/**
 * @file
 * Scheduling-mode equivalence of pipelined composition: an overlap run
 * must be byte-identical to the barrier schedule — reports and every
 * per-figure metric — for any thread count, either engine backend,
 * every fault kind, and any kill/resume point. Only wall-clock (and
 * the pipeline census that measures it) may differ between modes.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "ap/ap_config.h"
#include "common/error.h"
#include "common/rng.h"
#include "engine/trace.h"
#include "nfa/glushkov.h"
#include "pap/exec/checkpoint.h"
#include "pap/fault_injector.h"
#include "pap/multistream.h"
#include "pap/runner.h"
#include "pap/speculative.h"
#include "workload_helpers.h"

namespace pap {
namespace {

ApConfig
smallBoard(std::uint32_t half_cores)
{
    ApConfig cfg = ApConfig::d480(1);
    cfg.devicesPerRank = half_cores;
    cfg.halfCoresPerDevice = 1;
    return cfg;
}

struct Workload
{
    Nfa nfa;
    InputTrace input;
};

Workload
pipelineWorkload()
{
    Rng rng(77);
    return Workload{compileRuleset({{"ab.*cd", 1}, {"fgh", 2}}, "m"),
                    randomTextTrace(rng, 16384, "abcdfgh ")};
}

/** The per-figure facts of a run that must be mode-invariant. */
void
expectSameRun(const PapResult &a, const PapResult &b)
{
    EXPECT_EQ(a.reports, b.reports);
    EXPECT_EQ(a.papCycles, b.papCycles);
    EXPECT_EQ(a.baselineCycles, b.baselineCycles);
    EXPECT_DOUBLE_EQ(a.speedup, b.speedup);
    EXPECT_EQ(a.numSegments, b.numSegments);
    EXPECT_DOUBLE_EQ(a.flowsInRange, b.flowsInRange);
    EXPECT_DOUBLE_EQ(a.flowsAfterCc, b.flowsAfterCc);
    EXPECT_DOUBLE_EQ(a.flowsAfterParent, b.flowsAfterParent);
    EXPECT_DOUBLE_EQ(a.avgActiveFlows, b.avgActiveFlows);
    EXPECT_DOUBLE_EQ(a.switchOverheadPct, b.switchOverheadPct);
    EXPECT_DOUBLE_EQ(a.reportInflation, b.reportInflation);
    EXPECT_EQ(a.flowTransitions, b.flowTransitions);
    EXPECT_EQ(a.flowSymbolCycles, b.flowSymbolCycles);
    EXPECT_EQ(a.verified, b.verified);
    EXPECT_EQ(a.degraded, b.degraded);
    ASSERT_EQ(a.segments.size(), b.segments.size());
    for (std::size_t j = 0; j < a.segments.size(); ++j) {
        EXPECT_EQ(a.segments[j].begin, b.segments[j].begin);
        EXPECT_EQ(a.segments[j].length, b.segments[j].length);
        EXPECT_EQ(a.segments[j].flows, b.segments[j].flows);
        EXPECT_EQ(a.segments[j].deactivated,
                  b.segments[j].deactivated);
        EXPECT_EQ(a.segments[j].converged, b.segments[j].converged);
        EXPECT_EQ(a.segments[j].ranToEnd, b.segments[j].ranToEnd);
        EXPECT_EQ(a.segments[j].truePaths, b.segments[j].truePaths);
        EXPECT_EQ(a.segments[j].totalPaths, b.segments[j].totalPaths);
        EXPECT_EQ(a.segments[j].tDone, b.segments[j].tDone);
        EXPECT_EQ(a.segments[j].tResolve, b.segments[j].tResolve);
        EXPECT_EQ(a.segments[j].entries, b.segments[j].entries);
    }
}

// --- Clean runs: modes x threads x engines ---------------------------

TEST(PipelineIdentity, CleanRunsMatchAcrossModesThreadsAndEngines)
{
    const Workload w = pipelineWorkload();
    const ApConfig board = smallBoard(8);
    for (const EngineKind engine :
         {EngineKind::Sparse, EngineKind::Dense}) {
        PapOptions ref_opt;
        ref_opt.engine = engine;
        ref_opt.threads = 1;
        ref_opt.pipeline = PipelineMode::Barrier;
        const PapResult ref = runPap(w.nfa, w.input, board, ref_opt);
        ASSERT_TRUE(ref.status.ok());
        ASSERT_TRUE(ref.verified);
        EXPECT_EQ(ref.pipelineMode, "barrier");
        for (const std::uint32_t threads : {1u, 2u, 8u}) {
            PapOptions opt;
            opt.engine = engine;
            opt.threads = threads;
            opt.pipeline = PipelineMode::Overlap;
            const PapResult r = runPap(w.nfa, w.input, board, opt);
            ASSERT_TRUE(r.status.ok());
            EXPECT_EQ(r.pipelineMode, "overlap");
            EXPECT_GT(r.pipelineWallMs, 0.0);
            EXPECT_GE(r.pipelineOccupancy, 0.0);
            EXPECT_LE(r.pipelineOccupancy, 1.0);
            expectSameRun(ref, r);
            // ...and the barrier schedule at the same thread count
            // produces the same bytes too.
            PapOptions bar = opt;
            bar.pipeline = PipelineMode::Barrier;
            const PapResult b = runPap(w.nfa, w.input, board, bar);
            ASSERT_TRUE(b.status.ok());
            expectSameRun(ref, b);
        }
    }
}

TEST(PipelineIdentity, ExplicitWindowDoesNotChangeResults)
{
    const Workload w = pipelineWorkload();
    const ApConfig board = smallBoard(8);
    PapOptions base;
    base.threads = 4;
    base.pipeline = PipelineMode::Barrier;
    const PapResult ref = runPap(w.nfa, w.input, board, base);
    ASSERT_TRUE(ref.status.ok());
    for (const std::uint32_t window : {1u, 2u, 16u}) {
        PapOptions opt = base;
        opt.pipeline = PipelineMode::Overlap;
        opt.pipelineWindow = window;
        const PapResult r = runPap(w.nfa, w.input, board, opt);
        ASSERT_TRUE(r.status.ok()) << "window " << window;
        expectSameRun(ref, r);
    }
}

TEST(PipelineIdentity, DeviceEmulationChangesOnlyWallClock)
{
    const Workload w = pipelineWorkload();
    const ApConfig board = smallBoard(8);
    PapOptions ref_opt;
    ref_opt.pipeline = PipelineMode::Barrier;
    const PapResult ref = runPap(w.nfa, w.input, board, ref_opt);
    ASSERT_TRUE(ref.status.ok());
    for (const PipelineMode mode :
         {PipelineMode::Barrier, PipelineMode::Overlap}) {
        PapOptions opt;
        opt.threads = 2;
        opt.pipeline = mode;
        opt.emulateDeviceNsPerSymbol = 100.0;
        const PapResult r = runPap(w.nfa, w.input, board, opt);
        ASSERT_TRUE(r.status.ok());
        EXPECT_TRUE(r.verified);
        expectSameRun(ref, r);
    }
}

// --- Fault injection: every kind, both modes -------------------------

TEST(PipelineIdentity, EveryFaultKindMatchesAcrossModes)
{
    const Workload w = pipelineWorkload();
    const ApConfig board = smallBoard(8);
    // Hardware kinds use a generous budget that never binds plus a
    // sub-1 rate, so the per-segment fault streams fire identically
    // regardless of scheduling; worker kinds are pure hashes of
    // (seed, kind, segment) and scheduling-invariant by construction.
    const char *const kSpecs[] = {
        "corrupt-sv:1000:0.25",      "evict-svc:1000:0.25",
        "drop-report:1000:0.25",     "truncate-report:1000:0.25",
        "drop-fiv:1000:0.25",        "stall-worker:1:0.5",
        "crash-worker:1:0.5",
    };
    for (const char *spec : kSpecs) {
        for (const std::uint32_t threads : {1u, 2u, 8u}) {
            std::vector<PapResult> runs;
            for (const PipelineMode mode :
                 {PipelineMode::Barrier, PipelineMode::Overlap}) {
                auto fi = FaultInjector::fromSpec(spec, 21).value();
                PapOptions opt;
                opt.threads = threads;
                opt.pipeline = mode;
                opt.segmentDeadlineMs = 10.0; // keep stalls short
                opt.retryBackoffBaseMs = 0;
                opt.faultInjector = &fi;
                runs.push_back(runPap(w.nfa, w.input, board, opt));
                ASSERT_TRUE(runs.back().status.ok())
                    << spec << " threads " << threads;
            }
            expectSameRun(runs[0], runs[1]);
        }
    }
}

// --- Checkpoint kill/resume across modes -----------------------------

class PipelineCheckpoint : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "papsim_pipeline_test.ckpt";
        exec::removeCheckpoint(path_);
    }
    void
    TearDown() override
    {
        exec::removeCheckpoint(path_);
    }

    std::string path_;
};

TEST_F(PipelineCheckpoint, EveryKillPointResumesIdenticallyUnderBothModes)
{
    const Workload w = pipelineWorkload();
    const ApConfig board = smallBoard(8);
    PapOptions full_opt;
    full_opt.pipeline = PipelineMode::Barrier;
    const PapResult full = runPap(w.nfa, w.input, board, full_opt);
    ASSERT_TRUE(full.status.ok());
    ASSERT_GE(full.numSegments, 3u);

    // Every frontier value, INCLUDING the fully-complete checkpoint
    // left by stopping after the last segment, whose resume is a pure
    // compose-from-checkpoint run. Kill/resume mode pairs cover both
    // same-mode resumes and the cross-mode barrier-kill -> overlap-
    // resume handoff (checkpoints carry no scheduling state).
    const std::pair<PipelineMode, PipelineMode> kModePairs[] = {
        {PipelineMode::Barrier, PipelineMode::Barrier},
        {PipelineMode::Overlap, PipelineMode::Overlap},
        {PipelineMode::Barrier, PipelineMode::Overlap},
    };
    for (std::uint32_t stop = 0; stop < full.numSegments; ++stop) {
        for (const auto &pair : kModePairs) {
            exec::removeCheckpoint(path_);
            PapOptions killed;
            killed.checkpointPath = path_;
            killed.stopAfterSegment = static_cast<std::int64_t>(stop);
            killed.threads = 2;
            killed.pipeline = pair.first;
            const PapResult dead =
                runPap(w.nfa, w.input, board, killed);
            EXPECT_FALSE(dead.status.ok()) << "stop " << stop;
            EXPECT_EQ(dead.status.code(), ErrorCode::Cancelled)
                << "stop " << stop;

            PapOptions resume;
            resume.checkpointPath = path_;
            resume.threads = 2;
            resume.pipeline = pair.second;
            const PapResult r = runPap(w.nfa, w.input, board, resume);
            ASSERT_TRUE(r.status.ok()) << "stop " << stop;
            EXPECT_TRUE(r.resumedFromCheckpoint) << "stop " << stop;
            EXPECT_EQ(r.resumedSegments, stop + 1) << "stop " << stop;
            expectSameRun(full, r);
        }
    }
}

TEST_F(PipelineCheckpoint, FullyCompleteCheckpointResumesAsPureCompose)
{
    const Workload w = pipelineWorkload();
    const ApConfig board = smallBoard(8);
    const PapResult full = runPap(w.nfa, w.input, board);
    ASSERT_TRUE(full.status.ok());

    for (const PipelineMode mode :
         {PipelineMode::Barrier, PipelineMode::Overlap}) {
        exec::removeCheckpoint(path_);
        // Stop after the LAST segment: the run still exits Cancelled,
        // but the checkpoint frontier covers every segment.
        PapOptions killed;
        killed.checkpointPath = path_;
        killed.stopAfterSegment =
            static_cast<std::int64_t>(full.numSegments) - 1;
        killed.pipeline = mode;
        const PapResult dead = runPap(w.nfa, w.input, board, killed);
        EXPECT_FALSE(dead.status.ok());
        EXPECT_EQ(dead.status.code(), ErrorCode::Cancelled);

        // The resume executes zero segments — composition runs purely
        // from checkpointed state — and still verifies byte-exactly.
        PapOptions resume;
        resume.checkpointPath = path_;
        resume.pipeline = mode;
        const PapResult r = runPap(w.nfa, w.input, board, resume);
        ASSERT_TRUE(r.status.ok());
        EXPECT_TRUE(r.resumedFromCheckpoint);
        EXPECT_EQ(r.resumedSegments, full.numSegments);
        EXPECT_TRUE(r.verified);
        expectSameRun(full, r);
    }
}

// --- The other drivers ----------------------------------------------

TEST(PipelineIdentity, SpeculativeRunsMatchAcrossModes)
{
    const Workload w = pipelineWorkload();
    const ApConfig board = smallBoard(8);
    SpeculationOptions ref_opt;
    ref_opt.pipeline = PipelineMode::Barrier;
    const SpeculationResult ref =
        runSpeculative(w.nfa, w.input, board, ref_opt);
    ASSERT_TRUE(ref.status.ok());
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
        SpeculationOptions opt;
        opt.threads = threads;
        opt.pipeline = PipelineMode::Overlap;
        const SpeculationResult r =
            runSpeculative(w.nfa, w.input, board, opt);
        ASSERT_TRUE(r.status.ok());
        EXPECT_EQ(ref.reports, r.reports);
        EXPECT_EQ(ref.papCycles, r.papCycles);
        EXPECT_DOUBLE_EQ(ref.accuracy, r.accuracy);
        EXPECT_EQ(ref.verified, r.verified);
    }
}

TEST(PipelineIdentity, MultiStreamRunsMatchAcrossModes)
{
    Rng rng(7);
    const Nfa nfa = compileRuleset({{"ab+c", 1}, {"de", 2}}, "ms");
    std::vector<InputTrace> streams;
    for (int i = 0; i < 6; ++i)
        streams.push_back(randomTextTrace(rng, 4096, "abcde "));
    const ApConfig board = smallBoard(2);
    PapOptions ref_opt;
    ref_opt.pipeline = PipelineMode::Barrier;
    const MultiStreamResult ref =
        runMultiStream(nfa, streams, board, ref_opt);
    ASSERT_TRUE(ref.status.ok());
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
        PapOptions opt;
        opt.threads = threads;
        opt.pipeline = PipelineMode::Overlap;
        const MultiStreamResult r =
            runMultiStream(nfa, streams, board, opt);
        ASSERT_TRUE(r.status.ok());
        EXPECT_EQ(ref.reports, r.reports);
        EXPECT_EQ(ref.totalCycles, r.totalCycles);
        EXPECT_EQ(ref.switchCycles, r.switchCycles);
        EXPECT_EQ(ref.streamDone, r.streamDone);
        EXPECT_EQ(ref.verified, r.verified);
    }
}

// --- PAP_PIPELINE environment ---------------------------------------

TEST(PipelineEnvironment, AutoConsultsTheEnvironment)
{
    const Workload w = pipelineWorkload();
    const ApConfig board = smallBoard(8);
    PapOptions opt; // pipeline = Auto
    setenv("PAP_PIPELINE", "overlap", 1);
    const PapResult over = runPap(w.nfa, w.input, board, opt);
    setenv("PAP_PIPELINE", "barrier", 1);
    const PapResult barr = runPap(w.nfa, w.input, board, opt);
    unsetenv("PAP_PIPELINE");
    const PapResult dflt = runPap(w.nfa, w.input, board, opt);
    ASSERT_TRUE(over.status.ok());
    ASSERT_TRUE(barr.status.ok());
    ASSERT_TRUE(dflt.status.ok());
    EXPECT_EQ(over.pipelineMode, "overlap");
    EXPECT_EQ(barr.pipelineMode, "barrier");
    EXPECT_EQ(dflt.pipelineMode, "barrier");
    expectSameRun(barr, over);
    // An explicit option beats the environment.
    setenv("PAP_PIPELINE", "barrier", 1);
    PapOptions explicit_opt;
    explicit_opt.pipeline = PipelineMode::Overlap;
    const PapResult forced =
        runPap(w.nfa, w.input, board, explicit_opt);
    unsetenv("PAP_PIPELINE");
    ASSERT_TRUE(forced.status.ok());
    EXPECT_EQ(forced.pipelineMode, "overlap");
}

TEST(PipelineEnvironment, InvalidValueIsATypedError)
{
    const Workload w = pipelineWorkload();
    const ApConfig board = smallBoard(8);
    setenv("PAP_PIPELINE", "sideways", 1);
    PapOptions opt; // Auto consults the environment...
    const PapResult r = runPap(w.nfa, w.input, board, opt);
    EXPECT_FALSE(r.status.ok());
    EXPECT_EQ(r.status.code(), ErrorCode::InvalidInput);
    EXPECT_NE(r.status.message().find("PAP_PIPELINE"),
              std::string::npos);
    EXPECT_NE(r.status.message().find("sideways"), std::string::npos);
    // ...but an explicit mode never does, so it still runs.
    PapOptions forced;
    forced.pipeline = PipelineMode::Barrier;
    const PapResult ok = runPap(w.nfa, w.input, board, forced);
    unsetenv("PAP_PIPELINE");
    EXPECT_TRUE(ok.status.ok());
}

} // namespace
} // namespace pap
