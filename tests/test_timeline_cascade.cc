/**
 * @file
 * Quantitative tests of the cross-segment FIV cascade (Figure 6 of
 * the paper): the pipeline effect when every segment's false flows
 * die only once the previous segment's truth arrives, and the
 * steady-state spacing this induces.
 */

#include <gtest/gtest.h>

#include "ap/ap_config.h"
#include "pap/timeline.h"

namespace pap {
namespace {

const ApTiming kTiming;

/** A segment with one true and @p false_flows immortal false flows. */
SegmentTimingInput
cascadeSegment(std::uint64_t len, std::uint32_t false_flows)
{
    SegmentTimingInput seg;
    seg.segLen = len;
    seg.hasEnumFlows = true;
    seg.aliveEnumFlowsAtEnd = 1 + false_flows;
    seg.flows.push_back(FlowTimingInfo{FlowKind::Asg, len, true});
    seg.flows.push_back(FlowTimingInfo{FlowKind::Enum, len, true});
    for (std::uint32_t i = 0; i < false_flows; ++i)
        seg.flows.push_back(FlowTimingInfo{FlowKind::Enum, len, false});
    return seg;
}

TEST(TimelineCascade, FivPipelinesAcrossSegments)
{
    PapOptions opt;
    opt.tdmQuantum = 100;
    opt.decodeBaseCycles = 0;
    opt.decodePerFlowCycles = 0;
    opt.applyGoldenCap = false;

    const std::uint64_t len = 100000;
    std::vector<SegmentTimingInput> segs;
    SegmentTimingInput golden;
    golden.segLen = len;
    golden.flows.push_back(FlowTimingInfo{FlowKind::Golden, len, true});
    segs.push_back(golden);
    for (int j = 0; j < 6; ++j)
        segs.push_back(cascadeSegment(len, /*false_flows=*/8));

    const TimelineResult r = simulateTimeline(
        segs, 0, len * segs.size(), opt, kTiming);

    // Segment 0 finishes at len; every later segment receives its FIV
    // shortly after the previous one resolves, drops from 10 flows to
    // 2, and finishes a roughly constant delta later: the pipeline of
    // Figure 6. The deltas must be far below the 10x slowdown a
    // cascade-free run would show, and roughly equal in steady state.
    ASSERT_EQ(r.tDone.size(), segs.size());
    std::vector<double> deltas;
    for (std::size_t j = 2; j < segs.size(); ++j)
        deltas.push_back(static_cast<double>(r.tDone[j]) -
                         static_cast<double>(r.tDone[j - 1]));
    for (const double d : deltas) {
        EXPECT_GT(d, 0.0);
        EXPECT_LT(d, 3.0 * static_cast<double>(len));
    }
    // The cascade accelerates: each segment receives its FIV earlier
    // relative to its own progress, so the deltas shrink monotonically.
    for (std::size_t i = 1; i < deltas.size(); ++i)
        EXPECT_LT(deltas[i], deltas[i - 1]);

    // And the cascade beats the no-FIV run.
    PapOptions no_fiv = opt;
    no_fiv.enableFiv = false;
    const TimelineResult r2 = simulateTimeline(
        segs, 0, len * segs.size(), no_fiv, kTiming);
    EXPECT_GT(r2.papCycles, r.papCycles);
}

TEST(TimelineCascade, FirstSegmentAnchorsTheChain)
{
    PapOptions opt;
    opt.tdmQuantum = 100;
    opt.applyGoldenCap = false;

    const std::uint64_t len = 50000;
    std::vector<SegmentTimingInput> segs;
    SegmentTimingInput golden;
    golden.segLen = len;
    golden.flows.push_back(FlowTimingInfo{FlowKind::Golden, len, true});
    segs.push_back(golden);
    segs.push_back(cascadeSegment(len, 4));

    const TimelineResult r =
        simulateTimeline(segs, 0, 2 * len, opt, kTiming);
    // Segment 1's FIV cannot arrive before segment 0 resolved:
    // t_done[0] + upload + decode + fivDownload.
    const Cycles fiv_min = r.tDone[0] +
                           kTiming.stateVectorUploadCycles +
                           kTiming.fivDownloadCycles;
    // Before the FIV, segment 1 runs 6 flows; it cannot have finished
    // earlier than the FIV arrival implies.
    EXPECT_GT(r.tDone[1], fiv_min);
    EXPECT_LT(r.tDone[1], 6 * len); // but far better than no-FIV
}

TEST(TimelineCascade, AllFalseFlowsSegmentIdlesAfterFiv)
{
    PapOptions opt;
    opt.tdmQuantum = 100;
    opt.applyGoldenCap = false;
    const std::uint64_t len = 50000;

    std::vector<SegmentTimingInput> segs;
    SegmentTimingInput golden;
    golden.segLen = len;
    golden.flows.push_back(FlowTimingInfo{FlowKind::Golden, len, true});
    segs.push_back(golden);
    // No ASG, no true flow: everything dies at the FIV.
    SegmentTimingInput dead;
    dead.segLen = len;
    dead.hasEnumFlows = true;
    dead.aliveEnumFlowsAtEnd = 0;
    for (int i = 0; i < 4; ++i)
        dead.flows.push_back(FlowTimingInfo{FlowKind::Enum, len, false});
    segs.push_back(dead);

    const TimelineResult r =
        simulateTimeline(segs, 0, 2 * len, opt, kTiming);
    // After the FIV kill the half-core idles to segment end; the
    // timeline must terminate (no livelock) with a finite t_done.
    EXPECT_GT(r.tDone[1], 0u);
    EXPECT_LT(r.tDone[1], 5 * len);
}

} // namespace
} // namespace pap
