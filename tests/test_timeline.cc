/**
 * @file
 * Timeline (cycle-accounting) model tests: single-flow segments pay
 * no switches, TDM cost accounting, FIV kills of false flows, the
 * Tcpu skip rules, drain costs, and the golden-execution cap.
 */

#include <gtest/gtest.h>

#include "ap/ap_config.h"
#include "pap/timeline.h"

namespace pap {
namespace {

SegmentTimingInput
segment(std::uint64_t len,
        std::initializer_list<FlowTimingInfo> flows,
        std::uint64_t entries = 0, std::uint32_t alive = 0)
{
    SegmentTimingInput seg;
    seg.segLen = len;
    seg.flows = flows;
    seg.totalEntries = entries;
    seg.aliveEnumFlowsAtEnd = alive;
    for (const auto &f : seg.flows)
        if (f.kind == FlowKind::Enum)
            seg.hasEnumFlows = true;
    return seg;
}

FlowTimingInfo
flow(FlowKind kind, std::uint64_t symbols, bool is_true = true)
{
    return FlowTimingInfo{kind, symbols, is_true};
}

const ApTiming kTiming;

TEST(Timeline, SingleGoldenSegmentHasNoOverhead)
{
    PapOptions opt;
    const std::vector<SegmentTimingInput> segs = {
        segment(1000, {flow(FlowKind::Golden, 1000)})};
    const TimelineResult r = simulateTimeline(segs, 0, 1000, opt,
                                              kTiming);
    EXPECT_EQ(r.tDone[0], 1000u);
    EXPECT_EQ(r.switchCycles, 0u);
    EXPECT_EQ(r.papCycles, 1000u); // no enum flows anywhere: no tcpu
    EXPECT_EQ(r.tcpuCycles[0], 0u);
}

TEST(Timeline, TwoFlowsPaySwitches)
{
    PapOptions opt;
    opt.tdmQuantum = 100;
    const std::vector<SegmentTimingInput> segs = {
        segment(1000, {flow(FlowKind::Golden, 1000)}),
        segment(1000, {flow(FlowKind::Asg, 1000),
                       flow(FlowKind::Enum, 1000)},
                0, 1)};
    const TimelineResult r = simulateTimeline(segs, 0, 2000, opt,
                                              kTiming);
    // Segment 1: 10 rounds x (2 flows x 100 syms + 2 x 3 switch).
    EXPECT_EQ(r.tDone[1], 2000u + 60u);
    EXPECT_EQ(r.switchCycles, 60u);
}

TEST(Timeline, DeadFlowStopsCosting)
{
    PapOptions opt;
    opt.tdmQuantum = 100;
    const std::vector<SegmentTimingInput> segs = {
        segment(1000, {flow(FlowKind::Golden, 1000)}),
        segment(1000, {flow(FlowKind::Asg, 1000),
                       flow(FlowKind::Enum, 200)})};
    const TimelineResult r = simulateTimeline(segs, 0, 2000, opt,
                                              kTiming);
    // Enum flow contributes 200 symbols + switches for 2 rounds.
    EXPECT_EQ(r.tDone[1], 1000u + 200u + 2u * 2u * 3u);
}

TEST(Timeline, FivKillsFalseFlows)
{
    PapOptions opt;
    opt.tdmQuantum = 100;
    opt.decodeBaseCycles = 0;
    opt.decodePerFlowCycles = 0;

    // Segment 0 finishes at 1000; FIV reaches segment 1 at
    // 1000 + 1668 (upload) + 15 (download).
    const std::vector<SegmentTimingInput> segs = {
        segment(10000, {flow(FlowKind::Golden, 10000)}),
        segment(10000, {flow(FlowKind::Asg, 10000),
                        flow(FlowKind::Enum, 10000, /*true*/ true),
                        flow(FlowKind::Enum, 10000, /*true*/ false)},
                0, 2)};

    TimelineResult with = simulateTimeline(segs, 0, 20000, opt,
                                           kTiming);
    PapOptions no_fiv = opt;
    no_fiv.enableFiv = false;
    TimelineResult without = simulateTimeline(segs, 0, 20000, no_fiv,
                                              kTiming);
    EXPECT_LT(with.tDone[1], without.tDone[1]);
    // Without FIV: 3 flows all the way: 30000 + 300 rounds... exactly
    // 100 rounds x (300 + 9).
    EXPECT_EQ(without.tDone[1], 100u * 309u);
}

TEST(Timeline, TrueFlowsSurviveFiv)
{
    PapOptions opt;
    opt.tdmQuantum = 100;
    const std::vector<SegmentTimingInput> segs = {
        segment(5000, {flow(FlowKind::Golden, 5000)}),
        segment(5000, {flow(FlowKind::Enum, 5000, true)})};
    const TimelineResult r = simulateTimeline(segs, 0, 10000, opt,
                                              kTiming);
    // The single (true) enum flow runs to completion; one flow means
    // no switch cost either.
    EXPECT_EQ(r.tDone[1], 5000u);
}

TEST(Timeline, TcpuSkippedWithoutEnumFlows)
{
    PapOptions opt;
    const std::vector<SegmentTimingInput> segs = {
        segment(1000, {flow(FlowKind::Golden, 1000)}),
        segment(1000, {flow(FlowKind::Asg, 1000)}),
        segment(1000, {flow(FlowKind::Asg, 1000)})};
    const TimelineResult r = simulateTimeline(segs, 0, 3000, opt,
                                              kTiming);
    for (const auto tcpu : r.tcpuCycles)
        EXPECT_EQ(tcpu, 0u);
    EXPECT_EQ(r.papCycles, 1000u);
}

TEST(Timeline, UploadChargedWhenNextSegmentNeedsT)
{
    PapOptions opt;
    const std::vector<SegmentTimingInput> segs = {
        segment(1000, {flow(FlowKind::Golden, 1000)}),
        segment(1000, {flow(FlowKind::Asg, 1000),
                       flow(FlowKind::Enum, 48)},
                0, 0)};
    const TimelineResult r = simulateTimeline(segs, 0, 2000, opt,
                                              kTiming);
    // Segment 0 pays the upload (segment 1 needs its T)...
    EXPECT_EQ(r.tcpuCycles[0], kTiming.stateVectorUploadCycles);
    // ...and segment 1 pays upload (it has enum flows) but no
    // per-flow decode since nothing survived to segment end.
    EXPECT_EQ(r.tcpuCycles[1], kTiming.stateVectorUploadCycles +
                                   opt.decodeBaseCycles);
}

TEST(Timeline, DecodeChainsSeriallyButUploadsOverlap)
{
    PapOptions opt;
    opt.decodeBaseCycles = 50;
    opt.decodePerFlowCycles = 0;
    std::vector<SegmentTimingInput> segs;
    segs.push_back(segment(1000, {flow(FlowKind::Golden, 1000)}));
    for (int j = 0; j < 4; ++j)
        segs.push_back(segment(
            1000, {flow(FlowKind::Enum, 1000, true)}, 0, 1));
    const TimelineResult r =
        simulateTimeline(segs, 0, 5000, opt, kTiming);
    // All segments finish at 1000; uploads overlap; decodes chain:
    // truth_j = 1000 + 1668 + 50 * (j) ... segment 0 truth at
    // 1000+1668, then +50 per enumeration segment.
    EXPECT_EQ(r.tResolve.back(),
              1000u + kTiming.stateVectorUploadCycles + 4u * 50u);
}

TEST(Timeline, DrainAddsReportCost)
{
    PapOptions opt;
    opt.reportCostCyclesPerEvent = 0.5;
    opt.applyGoldenCap = false; // pap drain exceeds baseline here
    const std::vector<SegmentTimingInput> segs = {
        segment(1000, {flow(FlowKind::Golden, 1000)}, /*entries=*/200)};
    const TimelineResult r = simulateTimeline(segs, 100, 1000, opt,
                                              kTiming);
    EXPECT_EQ(r.papCycles, 1000u + 100u);
    EXPECT_EQ(r.baselineCycles, 1000u + 50u);
}

TEST(Timeline, GoldenCapBoundsSpeedupAtOne)
{
    PapOptions opt;
    opt.tdmQuantum = 100;
    // A pathological segment with 50 immortal flows.
    std::vector<FlowTimingInfo> flows;
    for (int i = 0; i < 50; ++i)
        flows.push_back(flow(FlowKind::Enum, 1000, true));
    SegmentTimingInput heavy;
    heavy.segLen = 1000;
    heavy.flows = flows;
    heavy.hasEnumFlows = true;
    heavy.aliveEnumFlowsAtEnd = 50;
    const std::vector<SegmentTimingInput> segs = {
        segment(1000, {flow(FlowKind::Golden, 1000)}), heavy};

    const TimelineResult r = simulateTimeline(segs, 0, 2000, opt,
                                              kTiming);
    EXPECT_TRUE(r.goldenCapped);
    EXPECT_DOUBLE_EQ(r.speedup, 1.0);

    PapOptions uncapped = opt;
    uncapped.applyGoldenCap = false;
    const TimelineResult r2 = simulateTimeline(segs, 0, 2000, uncapped,
                                               kTiming);
    EXPECT_LT(r2.speedup, 1.0);
}

TEST(Timeline, AvgActiveFlowsWeightsRounds)
{
    PapOptions opt;
    opt.tdmQuantum = 500;
    const std::vector<SegmentTimingInput> segs = {
        segment(1000, {flow(FlowKind::Golden, 1000)}),
        segment(1000, {flow(FlowKind::Asg, 1000),
                       flow(FlowKind::Enum, 500, true)})};
    const TimelineResult r = simulateTimeline(segs, 0, 2000, opt,
                                              kTiming);
    // Rounds: seg0 2x1 flow; seg1 round0 2 flows, round1 1 flow.
    EXPECT_DOUBLE_EQ(r.avgActiveFlows, (1 + 1 + 2 + 1) / 4.0);
}

TEST(Timeline, SvcBatchesSerializeAndPayReloads)
{
    PapOptions opt;
    opt.tdmQuantum = 100;
    opt.enableFiv = false;

    // One segment, two enum flows. Unbatched they share TDM rounds;
    // split into two batches they serialize and pay one reload.
    FlowTimingInfo a = flow(FlowKind::Enum, 1000);
    FlowTimingInfo b = flow(FlowKind::Enum, 1000);
    SegmentTimingInput together =
        segment(1000, {}, 0, 2);
    together.flows = {a, b};
    together.hasEnumFlows = true;

    SegmentTimingInput batched = together;
    batched.flows[1].batch = 1;
    batched.numBatches = 2;
    batched.batchReloadCycles = 50;

    const std::vector<SegmentTimingInput> one = {
        segment(1000, {flow(FlowKind::Golden, 1000)}), together};
    std::vector<SegmentTimingInput> two = one;
    two[1] = batched;

    PapOptions uncapped = opt;
    uncapped.applyGoldenCap = false;
    const TimelineResult rt =
        simulateTimeline(one, 0, 2000, uncapped, kTiming);
    const TimelineResult rb =
        simulateTimeline(two, 0, 2000, uncapped, kTiming);

    // Together: 10 rounds x (2x100 + 2x3). Batched: each batch runs
    // its flow alone (no switches) plus the inter-batch reload.
    EXPECT_EQ(rt.tDone[1], 2000u + 60u);
    EXPECT_EQ(rb.tDone[1], 2000u + 50u);
    EXPECT_EQ(rb.reuploadCycles, 50u);
    EXPECT_EQ(rt.reuploadCycles, 0u);
    EXPECT_EQ(rb.switchCycles, 0u);
}

} // namespace
} // namespace pap
