#!/usr/bin/env bash
# End-to-end smoke test of the serve daemon over its Unix socket:
# stream results byte-identical to one-shot runs, concurrent clients,
# ctl verbs (ping/stats/weight/swap), typed shedding at the admission
# cap, injected client faults, and SIGTERM drain -> checkpoint ->
# resume. Registered with CTest (label "serve"); $1 is papsim.
set -euo pipefail

PAPSIM="$1"
WORK="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT
cd "$WORK"
SOCK="$WORK/pap.sock"

cat > rules.txt <<'RULES'
ab.*cd
fgh
h[af]+g
RULES
cat > rules2.txt <<'RULES'
abc
dd+
RULES

"$PAPSIM" compile rules.txt m.nfa >/dev/null
"$PAPSIM" compile rules2.txt m2.nfa >/dev/null
"$PAPSIM" gentrace m.nfa t.bin 65536 --pm=0.6 --seed=3 >/dev/null
"$PAPSIM" gentrace m2.nfa t2.bin 32768 --pm=0.6 --seed=5 >/dev/null

wait_for_daemon() {
    for _ in $(seq 1 100); do
        if "$PAPSIM" ctl "$SOCK" ping 2>/dev/null | grep -q PONG; then
            return 0
        fi
        sleep 0.05
    done
    echo "daemon did not come up" >&2
    exit 1
}

# ctl against a dead socket is a typed error, not a hang.
if "$PAPSIM" ctl "$SOCK" ping 2>/dev/null; then exit 1; fi

# --- Equivalence and concurrency ------------------------------------

"$PAPSIM" run m.nfa t.bin --sequential --max-reports=100000 \
    | grep "^  match" > expected.txt

"$PAPSIM" serve m.nfa --socket="$SOCK" --threads=4 --chunk=4096 \
    > daemon.log 2>&1 &
DAEMON_PID=$!
wait_for_daemon

# A second daemon must refuse the live socket instead of stealing it.
if "$PAPSIM" serve m.nfa --socket="$SOCK" >/dev/null 2>&1; then
    echo "second daemon stole the socket" >&2
    exit 1
fi

"$PAPSIM" stream "$SOCK" alice t.bin --max-reports=100000 > s1.txt
grep "^  match" s1.txt | diff - expected.txt

# Three concurrent clients from two tenants, all exact.
"$PAPSIM" ctl "$SOCK" weight bob 2 | grep -q OK
"$PAPSIM" stream "$SOCK" alice t.bin --max-reports=100000 > c1.txt &
C1=$!
"$PAPSIM" stream "$SOCK" bob t.bin --max-reports=100000 > c2.txt &
C2=$!
"$PAPSIM" stream "$SOCK" bob t.bin --max-reports=100000 > c3.txt &
C3=$!
wait "$C1" "$C2" "$C3"
for f in c1.txt c2.txt c3.txt; do
    grep "^  match" "$f" | diff - expected.txt
done

"$PAPSIM" ctl "$SOCK" stats | tee stats.txt | grep -q "STATS "
grep -q "completed=4" stats.txt
grep -q "shed=0" stats.txt

# --- Hot swap --------------------------------------------------------

"$PAPSIM" run m2.nfa t2.bin --sequential --max-reports=100000 \
    | grep "^  match" > expected2.txt
"$PAPSIM" ctl "$SOCK" swap "$WORK/m2.nfa" | grep -q "OK 2"
"$PAPSIM" stream "$SOCK" alice t2.bin --max-reports=100000 \
    | grep "^  match" | diff - expected2.txt
"$PAPSIM" ctl "$SOCK" swap "$WORK/m.nfa" | grep -q "OK 3"
if "$PAPSIM" ctl "$SOCK" swap "$WORK/missing.nfa" 2>/dev/null; then
    exit 1
fi

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
grep -q "drained" daemon.log
test ! -S "$SOCK"
DAEMON_PID=""

# --- Admission shedding and injected client faults -------------------

"$PAPSIM" serve m.nfa --socket="$SOCK" --threads=2 --chunk=1024 \
    --max-sessions=1 > shed.log 2>&1 &
DAEMON_PID=$!
wait_for_daemon
# Hold the single slot open with a slow client (a fifo feeds it), then
# overflow: the second stream is shed with the typed error.
mkfifo slow.pipe
"$PAPSIM" stream "$SOCK" alice - < slow.pipe > slow.out &
SLOW_PID=$!
exec 9> slow.pipe
head -c 2048 t.bin >&9
sleep 0.3
if "$PAPSIM" stream "$SOCK" bob t.bin >/dev/null 2>shed.err; then
    echo "overflow stream was not shed" >&2
    exit 1
fi
grep -q "ResourceExhausted" shed.err
exec 9>&-
wait "$SLOW_PID"
kill -TERM "$DAEMON_PID" && wait "$DAEMON_PID"
DAEMON_PID=""

# Injected disconnects drop some streams (typed), never the daemon.
"$PAPSIM" serve m.nfa --socket="$SOCK" --threads=2 --chunk=1024 \
    --inject-faults=disconnect-client:2:0.5 --fault-seed=17 \
    > faulty.log 2>&1 &
DAEMON_PID=$!
wait_for_daemon
DROPPED=0
for i in $(seq 1 6); do
    if ! "$PAPSIM" stream "$SOCK" "t$i" t2.bin >/dev/null 2>&1; then
        DROPPED=$((DROPPED + 1))
    fi
done
test "$DROPPED" -gt 0
test "$DROPPED" -le 2
"$PAPSIM" ctl "$SOCK" ping | grep -q PONG
kill -TERM "$DAEMON_PID" && wait "$DAEMON_PID"
DAEMON_PID=""

# --- Drain checkpoint -> resume across a daemon restart --------------

mkdir ckpt
"$PAPSIM" serve m.nfa --socket="$SOCK" --threads=2 --chunk=2048 \
    --checkpoint-dir="$WORK/ckpt" > drain1.log 2>&1 &
DAEMON_PID=$!
wait_for_daemon
mkfifo drain.pipe
"$PAPSIM" stream "$SOCK" alice - --key=s1 < drain.pipe \
    > half.out 2>half.err &
HALF_PID=$!
exec 8> drain.pipe
head -c 30000 t.bin >&8
sleep 0.5
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""
exec 8>&-
wait "$HALF_PID" 2>/dev/null || true
grep -q "drained" drain1.log
ls ckpt | grep -q "alice-s1.papckpt"

"$PAPSIM" serve m.nfa --socket="$SOCK" --threads=2 --chunk=2048 \
    --checkpoint-dir="$WORK/ckpt" > drain2.log 2>&1 &
DAEMON_PID=$!
wait_for_daemon
# The checkpoint offset is whatever had been composed at drain time
# (>0, <=30000 fed bytes); the re-fed stream must still be exact.
"$PAPSIM" stream "$SOCK" alice t.bin --key=s1 --resume \
    --max-reports=100000 > resumed.txt
grep -q "resumed from checkpoint: [1-9]" resumed.txt
grep "^  match" resumed.txt | diff - expected.txt
kill -TERM "$DAEMON_PID" && wait "$DAEMON_PID"
DAEMON_PID=""

echo "serve smoke ok"
