#!/usr/bin/env bash
# Observability smoke test: run the CLI with --metrics-json /
# --trace-out / --profile, validate the metrics dump against the
# checked-in schema, and sanity-check the Chrome trace. Registered
# with CTest (label: obs); $1 is the papsim binary, $2 the repo root.
set -euo pipefail

PAPSIM="$1"
REPO_ROOT="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

cat > rules.txt <<'RULES'
abra
cad(ab)+ra
RULES

"$PAPSIM" compile rules.txt m.nfa >/dev/null
"$PAPSIM" gentrace m.nfa t.bin 32768 --pm=0.6 --seed=7 >/dev/null

OUT="$("$PAPSIM" run m.nfa t.bin --ranks=2 \
    --metrics-json metrics.json --trace-out trace.json --profile)"
echo "$OUT" | grep -q "(verified)"
echo "$OUT" | grep -q "metrics -> metrics.json"
echo "$OUT" | grep -q "trace   -> trace.json"
echo "$OUT" | grep -q "Phase"

# The metrics dump matches the schema and holds the headline metrics.
python3 "$REPO_ROOT/scripts/check_metrics_schema.py" metrics.json
python3 - <<'PY'
import json
m = json.load(open("metrics.json"))
assert m["counters"]["runner.runs"] == 1, m["counters"]
assert m["counters"]["runner.segments"] >= 1
assert "runner.speedup" in m["gauges"], sorted(m["gauges"])
assert m["histograms"]["runner.segment.length"]["count"] >= 1
PY

# The trace is valid JSON with balanced, phase-named host spans and
# simulated-timeline slices.
python3 - <<'PY'
import json
events = json.load(open("trace.json"))
assert isinstance(events, list) and events, "empty trace"
begins = [e for e in events if e["ph"] == "B"]
ends = [e for e in events if e["ph"] == "E"]
assert len(begins) == len(ends), (len(begins), len(ends))
names = {e["name"] for e in begins}
for phase in ("pap.run", "pap.partition", "pap.execute",
              "pap.compose"):
    assert phase in names, f"missing span {phase}: {sorted(names)}"
sim = [e for e in events if e["ph"] == "X" and e["pid"] == 2]
assert any(e["name"] == "execute" for e in sim), "no simulated spans"
for e in events:
    assert e["ts"] >= 0 and "pid" in e and "tid" in e
PY

# Without the flags, no artifacts appear.
"$PAPSIM" run m.nfa t.bin --ranks=2 >/dev/null
test ! -f extra.json

echo "obs smoke ok"
