#!/usr/bin/env bash
# Observability smoke test: run the CLI with --metrics-json /
# --trace-out / --profile, validate the metrics dump against the
# checked-in schema, and sanity-check the Chrome trace. Registered
# with CTest (label: obs); $1 is the papsim binary, $2 the repo root.
set -euo pipefail

PAPSIM="$1"
REPO_ROOT="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

cat > rules.txt <<'RULES'
abra
cad(ab)+ra
RULES

"$PAPSIM" compile rules.txt m.nfa >/dev/null
"$PAPSIM" gentrace m.nfa t.bin 32768 --pm=0.6 --seed=7 >/dev/null

OUT="$("$PAPSIM" run m.nfa t.bin --ranks=2 \
    --metrics-json metrics.json --trace-out trace.json --profile)"
echo "$OUT" | grep -q "(verified)"
echo "$OUT" | grep -q "metrics -> metrics.json"
echo "$OUT" | grep -q "trace   -> trace.json"
echo "$OUT" | grep -q "Phase"

# The metrics dump matches the schema and holds the headline metrics.
python3 "$REPO_ROOT/scripts/check_metrics_schema.py" metrics.json
python3 - <<'PY'
import json
m = json.load(open("metrics.json"))
assert m["counters"]["runner.runs"] == 1, m["counters"]
assert m["counters"]["runner.segments"] >= 1
assert "runner.speedup" in m["gauges"], sorted(m["gauges"])
assert m["histograms"]["runner.segment.length"]["count"] >= 1
PY

# The trace is valid JSON with balanced, phase-named host spans and
# simulated-timeline slices.
python3 - <<'PY'
import json
events = json.load(open("trace.json"))
assert isinstance(events, list) and events, "empty trace"
begins = [e for e in events if e["ph"] == "B"]
ends = [e for e in events if e["ph"] == "E"]
assert len(begins) == len(ends), (len(begins), len(ends))
names = {e["name"] for e in begins}
for phase in ("pap.run", "pap.partition", "pap.execute",
              "pap.compose"):
    assert phase in names, f"missing span {phase}: {sorted(names)}"
sim = [e for e in events if e["ph"] == "X" and e["pid"] == 2]
assert any(e["name"] == "execute" for e in sim), "no simulated spans"
for e in events:
    assert e["ts"] >= 0 and "pid" in e and "tid" in e
PY

# --attrib prints the wall-time ledger as a table whose wall buckets
# sum to the measured wall, and --attrib=json emits machine-readable
# buckets; overlap mode must satisfy the same invariant.
for mode in barrier overlap; do
    ATTRIB="$("$PAPSIM" run m.nfa t.bin --ranks=2 --threads=2 \
        --pipeline=$mode --attrib)"
    echo "$ATTRIB" | grep -q "attribution (wall"
    echo "$ATTRIB" | grep -q "compose.decode"

    "$PAPSIM" run m.nfa t.bin --ranks=2 --threads=2 \
        --pipeline=$mode --attrib=json > attrib.txt
    python3 - <<'PY'
import json
line = next(l for l in open("attrib.txt")
            if l.startswith("{") and '"wall_ms"' in l)
a = json.loads(line)
wall = a["wall_ms"]
charged = sum(a["buckets"].values())
assert wall > 0, a
assert abs(charged - wall) <= max(0.05 * wall, 0.5), (charged, wall)
assert "device.execute" in a["buckets"], a
assert "workers.execute" in a["aux"], a
PY
done

# Overlap-mode traces carry causal flow events: every flow id runs
# s -> t -> f with ordered timestamps, B/E stay balanced per track.
"$PAPSIM" run m.nfa t.bin --ranks=2 --threads=2 --pipeline=overlap \
    --trace-out trace_overlap.json >/dev/null
python3 - <<'PY'
import json
from collections import defaultdict
events = json.load(open("trace_overlap.json"))
per_track = defaultdict(int)
flows = defaultdict(dict)
for e in events:
    if e["ph"] in "BE":
        per_track[e["tid"]] += 1 if e["ph"] == "B" else -1
    if e["ph"] in "stf":
        assert e["id"] != 0
        flows[e["id"]][e["ph"]] = e["ts"]
    if e["ph"] == "f":
        assert e.get("bp") == "e", e
assert all(v == 0 for v in per_track.values()), per_track
assert flows, "no flow events in overlap trace"
for fid, ph in flows.items():
    assert set(ph) == {"s", "t", "f"}, (fid, ph)
    assert ph["s"] <= ph["t"] <= ph["f"], (fid, ph)
counters = {e["name"] for e in events if e["ph"] == "C"}
assert "pipeline.inflight" in counters, counters
PY

# Without the flags, no artifacts appear.
"$PAPSIM" run m.nfa t.bin --ranks=2 >/dev/null
test ! -f extra.json

echo "obs smoke ok"
