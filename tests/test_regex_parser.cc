/**
 * @file
 * Regex parser tests: syntax coverage, error reporting, repeat
 * expansion, and nullability.
 */

#include <gtest/gtest.h>

#include "nfa/regex.h"

namespace pap {
namespace {

RegexPtr
parse(const std::string &s)
{
    return parseRegex(s);
}

TEST(RegexParser, SingleLiteral)
{
    const RegexPtr r = parse("a");
    EXPECT_EQ(r->op, RegexOp::Literal);
    EXPECT_TRUE(r->cls.test('a'));
    EXPECT_EQ(r->cls.count(), 1);
}

TEST(RegexParser, ConcatAndAlt)
{
    const RegexPtr r = parse("ab|cd");
    EXPECT_EQ(r->op, RegexOp::Alt);
    ASSERT_EQ(r->children.size(), 2u);
    EXPECT_EQ(r->children[0]->op, RegexOp::Concat);
}

TEST(RegexParser, Quantifiers)
{
    EXPECT_EQ(parse("a*")->op, RegexOp::Star);
    EXPECT_EQ(parse("a+")->op, RegexOp::Plus);
    EXPECT_EQ(parse("a?")->op, RegexOp::Opt);
    const RegexPtr r = parse("a{2,5}");
    EXPECT_EQ(r->op, RegexOp::Repeat);
    EXPECT_EQ(r->repeatMin, 2);
    EXPECT_EQ(r->repeatMax, 5);
    const RegexPtr unbounded = parse("a{3,}");
    EXPECT_EQ(unbounded->repeatMax, -1);
    const RegexPtr exact = parse("a{4}");
    EXPECT_EQ(exact->repeatMin, 4);
    EXPECT_EQ(exact->repeatMax, 4);
}

TEST(RegexParser, StackedQuantifiers)
{
    // (a*)? parses as Opt(Star(a)).
    const RegexPtr r = parse("a*?");
    EXPECT_EQ(r->op, RegexOp::Opt);
    EXPECT_EQ(r->children[0]->op, RegexOp::Star);
}

TEST(RegexParser, Dot)
{
    const RegexPtr r = parse(".");
    EXPECT_TRUE(r->cls.full());
}

TEST(RegexParser, Escapes)
{
    EXPECT_TRUE(parse("\\n")->cls.test('\n'));
    EXPECT_TRUE(parse("\\t")->cls.test('\t'));
    EXPECT_TRUE(parse("\\\\")->cls.test('\\'));
    EXPECT_TRUE(parse("\\.")->cls.test('.'));
    EXPECT_EQ(parse("\\.")->cls.count(), 1);
    EXPECT_TRUE(parse("\\x41")->cls.test('A'));
    EXPECT_TRUE(parse("\\xff")->cls.test(0xff));
    const RegexPtr d = parse("\\d");
    EXPECT_EQ(d->cls.count(), 10);
    EXPECT_TRUE(parse("\\w")->cls.test('_'));
    EXPECT_TRUE(parse("\\s")->cls.test(' '));
    EXPECT_FALSE(parse("\\S")->cls.test(' '));
    EXPECT_EQ(parse("\\D")->cls.count(), 246);
}

TEST(RegexParser, CharClasses)
{
    const RegexPtr r = parse("[a-cx]");
    EXPECT_EQ(r->cls.count(), 4);
    EXPECT_TRUE(r->cls.test('b') && r->cls.test('x'));

    const RegexPtr neg = parse("[^a]");
    EXPECT_EQ(neg->cls.count(), 255);
    EXPECT_FALSE(neg->cls.test('a'));

    // ']' as first member is literal.
    const RegexPtr bracket = parse("[]a]");
    EXPECT_TRUE(bracket->cls.test(']'));
    EXPECT_TRUE(bracket->cls.test('a'));

    // '-' at the end is literal.
    const RegexPtr dash = parse("[a-]");
    EXPECT_TRUE(dash->cls.test('-'));

    // Escapes inside classes.
    const RegexPtr esc = parse("[\\n\\x20]");
    EXPECT_TRUE(esc->cls.test('\n'));
    EXPECT_TRUE(esc->cls.test(' '));

    // Escaped range endpoints.
    const RegexPtr er = parse("[\\x30-\\x39]");
    EXPECT_EQ(er->cls.count(), 10);
}

TEST(RegexParser, Grouping)
{
    const RegexPtr r = parse("(ab)+c");
    EXPECT_EQ(r->op, RegexOp::Concat);
    EXPECT_EQ(r->children[0]->op, RegexOp::Plus);
}

TEST(RegexParser, Errors)
{
    EXPECT_THROW(parse(""), RegexError);
    EXPECT_THROW(parse("("), RegexError);
    EXPECT_THROW(parse("a)"), RegexError);
    EXPECT_THROW(parse("*a"), RegexError);
    EXPECT_THROW(parse("a|"), RegexError);
    EXPECT_THROW(parse("|a"), RegexError);
    EXPECT_THROW(parse("[abc"), RegexError);
    EXPECT_THROW(parse("a{2,1}"), RegexError);
    EXPECT_THROW(parse("a{"), RegexError);
    EXPECT_THROW(parse("a{9999999}"), RegexError);
    EXPECT_THROW(parse("[z-a]"), RegexError);
    EXPECT_THROW(parse("\\xg1"), RegexError);
    try {
        parse("ab(cd");
    } catch (const RegexError &e) {
        EXPECT_GT(e.position(), 0u);
    }
}

TEST(RegexParser, ExpandRepeats)
{
    RegexPtr r = expandRepeats(parse("a{3}"));
    EXPECT_EQ(r->op, RegexOp::Concat);
    EXPECT_EQ(r->children.size(), 3u);

    r = expandRepeats(parse("a{1,3}"));
    EXPECT_EQ(r->op, RegexOp::Concat);
    EXPECT_EQ(r->children.size(), 3u); // a (a?) (a?)
    EXPECT_EQ(r->children[1]->op, RegexOp::Opt);

    r = expandRepeats(parse("a{2,}"));
    EXPECT_EQ(r->op, RegexOp::Concat);
    EXPECT_EQ(r->children.back()->op, RegexOp::Star);

    // Nested repeats expand everywhere.
    r = expandRepeats(parse("(a{2}){2}"));
    EXPECT_EQ(regexNullable(*r), false);
}

TEST(RegexParser, Nullability)
{
    EXPECT_FALSE(regexNullable(*parse("a")));
    EXPECT_TRUE(regexNullable(*parse("a*")));
    EXPECT_TRUE(regexNullable(*parse("a?")));
    EXPECT_FALSE(regexNullable(*parse("a+")));
    EXPECT_TRUE(regexNullable(*parse("(a*)+")));
    EXPECT_TRUE(regexNullable(*parse("a*b*")));
    EXPECT_FALSE(regexNullable(*parse("a*b")));
    EXPECT_TRUE(regexNullable(*parse("a|b*")));
    EXPECT_TRUE(regexNullable(*parse("a{0,3}")));
}

TEST(RegexParser, RoundTripToString)
{
    // toString output must re-parse to an equivalent tree (checked
    // via another round of toString).
    for (const char *pattern :
         {"ab|cd", "(a|b)*c", "a{2,4}x", "[a-f]+\\n", "x.?y"}) {
        const std::string once = regexToString(*parse(pattern));
        const std::string twice = regexToString(*parse(once));
        EXPECT_EQ(once, twice) << pattern;
    }
}

TEST(RegexParser, CloneIsDeep)
{
    RegexPtr r = parse("(ab)+c");
    RegexPtr c = r->clone();
    r->children.clear();
    EXPECT_EQ(c->op, RegexOp::Concat);
    EXPECT_EQ(c->children.size(), 2u);
}

} // namespace
} // namespace pap
