/**
 * @file
 * AP hardware model tests: board geometry, placement (bin packing,
 * routing hints, capacity checks), the State Vector Cache, and the
 * output report buffer.
 */

#include <gtest/gtest.h>

#include "ap/ap_config.h"
#include "ap/placement.h"
#include "ap/report_buffer.h"
#include "ap/state_vector_cache.h"
#include "nfa/glushkov.h"
#include "workloads/domain_gen.h"

namespace pap {
namespace {

TEST(ApConfig, D480Geometry)
{
    const ApConfig one = ApConfig::d480(1);
    EXPECT_EQ(one.totalHalfCores(), 16u);
    EXPECT_EQ(one.totalStes(), 16ull * 24576);
    const ApConfig four = ApConfig::d480(4);
    EXPECT_EQ(four.totalHalfCores(), 64u);
    EXPECT_EQ(four.svcEntriesPerDevice, 512u);
    EXPECT_DOUBLE_EQ(four.timing.symbolCycleNs, 7.5);
    EXPECT_EQ(four.timing.contextSwitchCycles, 3u);
    EXPECT_EQ(four.timing.stateVectorUploadCycles, 1668u);
    EXPECT_EQ(four.timing.fivDownloadCycles, 15u);
}

TEST(Placement, SmallMachineUsesOneHalfCore)
{
    const Nfa nfa = compileRuleset({{"abc", 1}, {"def", 2}}, "m");
    const Components comps = connectedComponents(nfa);
    const Placement p = placeAutomaton(nfa, comps, ApConfig::d480(1));
    EXPECT_EQ(p.halfCoresPerCopy, 1u);
    EXPECT_EQ(p.inputSegments(ApConfig::d480(1)), 16u);
    EXPECT_EQ(p.inputSegments(ApConfig::d480(4)), 64u);
    EXPECT_EQ(p.stesPerHalfCore[0], nfa.size());
}

TEST(Placement, RoutingHintForcesExtraHalfCores)
{
    const Nfa nfa = compileRuleset({{"abc", 1}}, "m");
    const Components comps = connectedComponents(nfa);
    const Placement p =
        placeAutomaton(nfa, comps, ApConfig::d480(1), 3);
    EXPECT_EQ(p.halfCoresPerCopy, 3u);
    EXPECT_EQ(p.inputSegments(ApConfig::d480(1)), 5u);
    EXPECT_EQ(p.inputSegments(ApConfig::d480(4)), 21u);
}

TEST(Placement, BinPacksComponents)
{
    // 45k single-component states of ~9 each need two half-cores.
    const Nfa nfa = buildSpm(5025, 7, 1);
    const Components comps = connectedComponents(nfa);
    const Placement p = placeAutomaton(nfa, comps, ApConfig::d480(4));
    EXPECT_EQ(p.halfCoresPerCopy, 2u);
    std::uint64_t total = 0;
    for (const auto used : p.stesPerHalfCore) {
        EXPECT_LE(used, ApConfig::d480(4).stesPerHalfCore);
        total += used;
    }
    EXPECT_EQ(total, nfa.size());
    // Components map into existing half-cores.
    for (const auto hc : p.halfCoreOfComponent)
        EXPECT_LT(hc, p.halfCoresPerCopy);
}

TEST(StateVectorCache, SaveLoadInvalidate)
{
    StateVectorCache svc(4);
    svc.save(0, {1, 2, 3});
    svc.save(1, {1, 2, 3});
    svc.save(2, {});
    EXPECT_TRUE(svc.resident(0));
    EXPECT_EQ(svc.occupancy(), 3u);
    EXPECT_EQ(svc.load(0), (std::vector<StateId>{1, 2, 3}));
    EXPECT_TRUE(svc.equal(0, 1));
    EXPECT_FALSE(svc.equal(0, 2));
    EXPECT_TRUE(svc.isZero(2));
    EXPECT_FALSE(svc.isZero(0));
    svc.invalidate(1);
    EXPECT_FALSE(svc.resident(1));
    EXPECT_EQ(svc.occupancy(), 2u);
    EXPECT_EQ(svc.counters().get("svc.saves"), 3u);
    EXPECT_EQ(svc.counters().get("svc.loads"), 1u);
    EXPECT_EQ(svc.counters().get("svc.compares"), 2u);
    EXPECT_EQ(svc.counters().get("svc.invalidates"), 1u);
}

TEST(StateVectorCache, OverwriteDoesNotGrow)
{
    StateVectorCache svc(1);
    svc.save(7, {1});
    svc.save(7, {2});
    EXPECT_EQ(svc.occupancy(), 1u);
    EXPECT_EQ(svc.load(7), (std::vector<StateId>{2}));
}

TEST(ReportBuffer, TracksFlowAttribution)
{
    ReportBuffer buffer;
    buffer.push(3, ReportEvent{10, 1, 100});
    buffer.push(5, {ReportEvent{11, 2, 101}, ReportEvent{12, 3, 102}});
    EXPECT_EQ(buffer.totalEvents(), 3u);
    EXPECT_EQ(buffer.eventsFromFlow(3), 1u);
    EXPECT_EQ(buffer.eventsFromFlow(5), 2u);
    EXPECT_EQ(buffer.eventsFromFlow(9), 0u);
    EXPECT_EQ(buffer.entries()[1].event.code, 101u);
}

} // namespace
} // namespace pap
