/**
 * @file
 * AP hardware model tests: board geometry, placement (bin packing,
 * routing hints, capacity checks), the State Vector Cache, and the
 * output report buffer.
 */

#include <gtest/gtest.h>

#include "ap/ap_config.h"
#include "ap/placement.h"
#include "ap/report_buffer.h"
#include "ap/state_vector_cache.h"
#include "nfa/glushkov.h"
#include "workloads/domain_gen.h"

namespace pap {
namespace {

TEST(ApConfig, D480Geometry)
{
    const ApConfig one = ApConfig::d480(1);
    EXPECT_EQ(one.totalHalfCores(), 16u);
    EXPECT_EQ(one.totalStes(), 16ull * 24576);
    const ApConfig four = ApConfig::d480(4);
    EXPECT_EQ(four.totalHalfCores(), 64u);
    EXPECT_EQ(four.svcEntriesPerDevice, 512u);
    EXPECT_DOUBLE_EQ(four.timing.symbolCycleNs, 7.5);
    EXPECT_EQ(four.timing.contextSwitchCycles, 3u);
    EXPECT_EQ(four.timing.stateVectorUploadCycles, 1668u);
    EXPECT_EQ(four.timing.fivDownloadCycles, 15u);
}

TEST(Placement, SmallMachineUsesOneHalfCore)
{
    const Nfa nfa = compileRuleset({{"abc", 1}, {"def", 2}}, "m");
    const Components comps = connectedComponents(nfa);
    const Placement p = placeAutomaton(nfa, comps, ApConfig::d480(1));
    EXPECT_EQ(p.halfCoresPerCopy, 1u);
    EXPECT_EQ(p.inputSegments(ApConfig::d480(1)), 16u);
    EXPECT_EQ(p.inputSegments(ApConfig::d480(4)), 64u);
    EXPECT_EQ(p.stesPerHalfCore[0], nfa.size());
}

TEST(Placement, RoutingHintForcesExtraHalfCores)
{
    const Nfa nfa = compileRuleset({{"abc", 1}}, "m");
    const Components comps = connectedComponents(nfa);
    const Placement p =
        placeAutomaton(nfa, comps, ApConfig::d480(1), 3);
    EXPECT_EQ(p.halfCoresPerCopy, 3u);
    EXPECT_EQ(p.inputSegments(ApConfig::d480(1)), 5u);
    EXPECT_EQ(p.inputSegments(ApConfig::d480(4)), 21u);
}

TEST(Placement, BinPacksComponents)
{
    // 45k single-component states of ~9 each need two half-cores.
    const Nfa nfa = buildSpm(5025, 7, 1);
    const Components comps = connectedComponents(nfa);
    const Placement p = placeAutomaton(nfa, comps, ApConfig::d480(4));
    EXPECT_EQ(p.halfCoresPerCopy, 2u);
    std::uint64_t total = 0;
    for (const auto used : p.stesPerHalfCore) {
        EXPECT_LE(used, ApConfig::d480(4).stesPerHalfCore);
        total += used;
    }
    EXPECT_EQ(total, nfa.size());
    // Components map into existing half-cores.
    for (const auto hc : p.halfCoreOfComponent)
        EXPECT_LT(hc, p.halfCoresPerCopy);
}

TEST(StateVectorCache, SaveLoadInvalidate)
{
    StateVectorCache svc(4);
    EXPECT_TRUE(svc.save(0, {1, 2, 3}).ok());
    EXPECT_TRUE(svc.save(1, {1, 2, 3}).ok());
    EXPECT_TRUE(svc.save(2, {}).ok());
    EXPECT_TRUE(svc.resident(0));
    EXPECT_EQ(svc.occupancy(), 3u);
    EXPECT_EQ(*svc.load(0).value(), (std::vector<StateId>{1, 2, 3}));
    EXPECT_TRUE(svc.equal(0, 1).value());
    EXPECT_FALSE(svc.equal(0, 2).value());
    EXPECT_TRUE(svc.isZero(2).value());
    EXPECT_FALSE(svc.isZero(0).value());
    svc.invalidate(1);
    EXPECT_FALSE(svc.resident(1));
    EXPECT_EQ(svc.occupancy(), 2u);
    EXPECT_EQ(svc.counters().get("svc.saves"), 3u);
    EXPECT_EQ(svc.counters().get("svc.loads"), 1u);
    EXPECT_EQ(svc.counters().get("svc.compares"), 2u);
    EXPECT_EQ(svc.counters().get("svc.invalidates"), 1u);
}

TEST(StateVectorCache, OverwriteDoesNotGrow)
{
    StateVectorCache svc(1);
    EXPECT_TRUE(svc.save(7, {1}).ok());
    EXPECT_TRUE(svc.save(7, {2}).ok());
    EXPECT_EQ(svc.occupancy(), 1u);
    EXPECT_EQ(*svc.load(7).value(), (std::vector<StateId>{2}));
}

TEST(StateVectorCache, ExactCapacityBoundary)
{
    // The D480 SVC holds exactly 512 contexts: the 512th flow fits,
    // the 513th is rejected with a typed capacity error.
    StateVectorCache svc(512);
    for (FlowId f = 0; f < 512; ++f)
        ASSERT_TRUE(svc.save(f, {f}).ok()) << "flow " << f;
    EXPECT_EQ(svc.occupancy(), 512u);

    const Status overflow = svc.save(512, {512});
    EXPECT_FALSE(overflow.ok());
    EXPECT_EQ(overflow.code(), ErrorCode::CapacityExceeded);
    EXPECT_FALSE(svc.resident(512));
    EXPECT_EQ(svc.occupancy(), 512u);
    EXPECT_EQ(svc.counters().get("svc.save_rejects"), 1u);

    // Overwriting a resident flow at full capacity still succeeds,
    // and eviction opens a slot for the rejected flow.
    EXPECT_TRUE(svc.save(511, {9, 10}).ok());
    svc.invalidate(0);
    EXPECT_TRUE(svc.save(512, {512}).ok());
    EXPECT_EQ(svc.occupancy(), 512u);
}

TEST(StateVectorCache, LoadNonResidentReturnsTypedError)
{
    StateVectorCache svc(2);
    EXPECT_TRUE(svc.save(1, {4, 5}).ok());
    const auto miss = svc.load(9);
    EXPECT_FALSE(miss.ok());
    EXPECT_EQ(miss.status().code(), ErrorCode::InvalidInput);
    EXPECT_EQ(svc.counters().get("svc.load_misses"), 1u);

    svc.invalidate(1);
    const auto evicted = svc.load(1);
    EXPECT_FALSE(evicted.ok());
    EXPECT_EQ(evicted.status().code(), ErrorCode::InvalidInput);
    EXPECT_EQ(svc.counters().get("svc.load_misses"), 2u);
}

TEST(ReportBuffer, TracksFlowAttribution)
{
    ReportBuffer buffer;
    buffer.push(3, ReportEvent{10, 1, 100});
    buffer.push(5, {ReportEvent{11, 2, 101}, ReportEvent{12, 3, 102}});
    EXPECT_EQ(buffer.totalEvents(), 3u);
    EXPECT_EQ(buffer.droppedEvents(), 0u);
    EXPECT_EQ(buffer.eventsFromFlow(3), 1u);
    EXPECT_EQ(buffer.eventsFromFlow(5), 2u);
    EXPECT_EQ(buffer.eventsFromFlow(9), 0u);
    EXPECT_EQ(buffer.entries()[1].event.code, 101u);
}

TEST(ReportBuffer, BoundedCapacityDropsAndAccounts)
{
    ReportBuffer buffer(2);
    EXPECT_EQ(buffer.capacity(), 2u);
    EXPECT_EQ(buffer.push(1, ReportEvent{10, 1, 100}), 0u);
    // Batch push that straddles the boundary: one accepted, one dropped.
    EXPECT_EQ(
        buffer.push(2, {ReportEvent{11, 2, 101}, ReportEvent{12, 3, 102}}),
        1u);
    EXPECT_TRUE(buffer.full());
    EXPECT_EQ(buffer.push(3, ReportEvent{13, 4, 103}), 1u);
    EXPECT_EQ(buffer.entries().size(), 2u);
    EXPECT_EQ(buffer.droppedEvents(), 2u);
    EXPECT_EQ(buffer.totalEvents(), 4u);
    // The retained prefix preserves arrival order.
    EXPECT_EQ(buffer.entries()[0].event.code, 100u);
    EXPECT_EQ(buffer.entries()[1].event.code, 101u);

    // Draining frees space; the drop count is cumulative.
    buffer.clear();
    EXPECT_FALSE(buffer.full());
    EXPECT_EQ(buffer.push(4, ReportEvent{14, 5, 104}), 0u);
    EXPECT_EQ(buffer.droppedEvents(), 2u);
}

} // namespace
} // namespace pap
