/**
 * @file
 * Workload generator tests: determinism, structural conformance of
 * the synthetic benchmarks to their Table-1 profiles, and the p_m
 * trace model.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "engine/functional_engine.h"
#include "nfa/analysis.h"
#include "nfa/builders.h"
#include "nfa/nfa_io.h"
#include "workloads/benchmarks.h"
#include "workloads/domain_gen.h"
#include "workloads/ruleset_gen.h"
#include "workloads/trace_gen.h"

namespace pap {
namespace {

TEST(Workloads, RulesetGenerationIsDeterministic)
{
    RulesetParams p;
    p.count = 50;
    p.seed = 7;
    const auto a = generateRuleset(p);
    const auto b = generateRuleset(p);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].pattern, b[i].pattern);
    p.seed = 8;
    const auto c = generateRuleset(p);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_diff |= (a[i].pattern != c[i].pattern);
    EXPECT_TRUE(any_diff);
}

TEST(Workloads, RulesetPatternsCompile)
{
    RulesetParams p;
    p.count = 120;
    p.dotstarFraction = 0.2;
    p.classFraction = 0.3;
    p.anyFraction = 0.1;
    p.boundedRepFraction = 0.2;
    p.altFraction = 0.3;
    p.separatorFraction = 0.3;
    p.firstAtomPool = 20;
    p.seed = 3;
    const Nfa nfa = buildRulesetAutomaton(p, "mix", true);
    EXPECT_GT(nfa.size(), 500u);
    nfa.validate();
}

TEST(Workloads, RegistryHasNineteenBenchmarksInTableOrder)
{
    const auto &registry = benchmarkRegistry();
    ASSERT_EQ(registry.size(), 19u);
    EXPECT_EQ(registry.front().name, "Dotstar03");
    EXPECT_EQ(registry.back().name, "ClamAV");
    std::set<std::string> names;
    for (const auto &info : registry)
        EXPECT_TRUE(names.insert(info.name).second);
}

TEST(Workloads, BenchmarksMatchTableProfiles)
{
    // Structural conformance of every synthetic rebuild: state count
    // within 2x of Table 1 (documented deviations: SPM, Hamming,
    // Levenshtein, EntityResolution) and component count within 2x.
    for (const auto &info : benchmarkRegistry()) {
        const Nfa nfa = buildBenchmark(info.name);
        nfa.validate();
        const double state_ratio =
            static_cast<double>(nfa.size()) / info.paper.states;
        EXPECT_GT(state_ratio, 0.30) << info.name;
        EXPECT_LT(state_ratio, 2.0) << info.name;
        const Components comps = connectedComponents(nfa);
        const double cc_ratio =
            static_cast<double>(comps.count) / info.paper.components;
        EXPECT_GT(cc_ratio, 0.5) << info.name;
        EXPECT_LT(cc_ratio, 3.0) << info.name;
    }
}

TEST(Workloads, BenchmarkBuildsAreDeterministic)
{
    const Nfa a = buildBenchmark("Bro217");
    const Nfa b = buildBenchmark("Bro217");
    ASSERT_EQ(a.size(), b.size());
    for (StateId q = 0; q < a.size(); ++q) {
        ASSERT_EQ(a[q].label, b[q].label);
        ASSERT_EQ(a[q].succ, b[q].succ);
    }
}

TEST(Workloads, RangeOneBenchmarksHaveTinyBoundaryRanges)
{
    for (const char *name : {"Ranges05", "Ranges1", "ExactMatch"}) {
        const Nfa nfa = buildBenchmark(name);
        const RangeAnalysis ranges(nfa);
        EXPECT_LE(ranges.rangeSize('\n'), 1u) << name;
    }
}

TEST(Workloads, SpmRangeDominatedByGapStates)
{
    const Nfa nfa = buildBenchmark("SPM");
    const RangeAnalysis ranges(nfa);
    // Every item symbol's range includes all gap states and their
    // successors: about 4 per pattern.
    EXPECT_NEAR(static_cast<double>(ranges.rangeSize('0')),
                4.0 * 5025, 0.15 * 4 * 5025);
}

TEST(Workloads, TraceGeneratorDeterministicPerSeed)
{
    const Nfa nfa = buildExactMatchSet({"abc"}, "m");
    TraceGenOptions opt;
    opt.baseAlphabet = alphabetFromString("abcx");
    const InputTrace t1 = generateTrace(nfa, 2000, opt, 5);
    const InputTrace t2 = generateTrace(nfa, 2000, opt, 5);
    const InputTrace t3 = generateTrace(nfa, 2000, opt, 6);
    EXPECT_EQ(t1.symbols(), t2.symbols());
    EXPECT_NE(t1.symbols(), t3.symbols());
}

TEST(Workloads, SeparatorInjectionPeriod)
{
    const Nfa nfa = buildExactMatchSet({"ab"}, "m");
    TraceGenOptions opt;
    opt.baseAlphabet = alphabetFromString("ab");
    opt.separator = 'Z';
    opt.separatorPeriod = 10;
    const InputTrace t = generateTrace(nfa, 100, opt, 1);
    for (std::size_t i = 9; i < t.size(); i += 10)
        EXPECT_EQ(t[i], 'Z');
}

TEST(Workloads, HigherPmDrivesMoreMatches)
{
    const Nfa nfa =
        buildExactMatchSet({"abcde", "bcdef", "cdefg"}, "m");
    TraceGenOptions low, high;
    low.baseAlphabet = high.baseAlphabet =
        alphabetFromString("abcdefgh");
    low.pm = 0.05;
    high.pm = 0.9;
    const InputTrace tl = generateTrace(nfa, 40000, low, 3);
    const InputTrace th = generateTrace(nfa, 40000, high, 3);
    auto count_reports = [&](const InputTrace &t) {
        CompiledNfa cnfa(nfa);
        FunctionalEngine e(cnfa, true);
        e.reset(cnfa.initialActive(), 0);
        e.run(t.begin(), t.size());
        return e.reports().size();
    };
    EXPECT_GT(count_reports(th), 4 * count_reports(tl));
}

TEST(Workloads, BenchmarkTraceUsesBenchmarkAlphabet)
{
    const Nfa nfa = buildBenchmark("RandomForest");
    const InputTrace t = buildBenchmarkTrace(nfa, "RandomForest", 4096);
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_GE(t[i], 'A');
        EXPECT_LE(t[i], 'P');
    }
}

TEST(Workloads, DomainGeneratorsProduceExpectedShapes)
{
    const Nfa fermi = buildFermi(5, 50, 20, 1);
    const Components fermi_comps = connectedComponents(fermi);
    // One dense mesh + 20 tracks.
    EXPECT_EQ(fermi_comps.count, 21u);

    const Nfa rf = buildRandomForest(10, 8, 2);
    EXPECT_EQ(rf.size(), 80u);
    EXPECT_EQ(connectedComponents(rf).count, 10u);

    const Nfa er = buildEntityResolution(3, 20, 3);
    EXPECT_EQ(connectedComponents(er).count, 3u);

    const Nfa clam = buildClamAv(10, 20, 30, 0.1, 4);
    EXPECT_EQ(connectedComponents(clam).count, 10u);
    EXPECT_GE(clam.size(), 200u);

    const Nfa spm = buildSpm(10, 7, 5);
    EXPECT_EQ(spm.size(), 10u * 9u);
}

TEST(Workloads, BenchmarkSerializationRoundTrip)
{
    const Nfa nfa = buildBenchmark("Bro217");
    std::stringstream ss;
    saveNfa(nfa, ss);
    const Nfa back = loadNfa(ss);
    EXPECT_EQ(back.size(), nfa.size());
    EXPECT_EQ(back.edgeCount(), nfa.edgeCount());
}

} // namespace
} // namespace pap
