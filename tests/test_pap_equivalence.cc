/**
 * @file
 * End-to-end property tests: the composed parallel execution must
 * produce exactly the sequential report set, for arbitrary automata,
 * inputs, segment counts, and optimization subsets. This exercises
 * ranges, enumeration, CC/parent/ASG merging, convergence,
 * deactivation, FIV, and report dedup together.
 */

#include <gtest/gtest.h>

#include "ap/ap_config.h"
#include "common/rng.h"
#include "nfa/glushkov.h"
#include "pap/runner.h"
#include "workload_helpers.h"

namespace pap {
namespace {

/** Board with a configurable number of half-cores for testing. */
ApConfig
tinyBoard(std::uint32_t half_cores)
{
    ApConfig cfg = ApConfig::d480(1);
    cfg.devicesPerRank = half_cores;
    cfg.halfCoresPerDevice = 1;
    return cfg;
}

PapOptions
testOptions()
{
    PapOptions opt;
    opt.tdmQuantum = 16; // small quanta exercise many rounds
    opt.verifyAgainstSequential = true;
    return opt;
}

TEST(PapEquivalence, SimpleRulesetManySegments)
{
    const std::vector<RegexRule> rules = {
        {"abra", 1}, {"cad(ab)+ra", 2}, {"a.c", 3}, {"[x-z]{2,4}q", 4}};
    const Nfa nfa = compileRuleset(rules, "simple");
    Rng rng(7);
    const InputTrace input = randomTextTrace(rng, 4096, "abcdqrxyz ");
    for (const std::uint32_t hc : {2u, 3u, 8u}) {
        const PapResult r =
            runPap(nfa, input, tinyBoard(hc), testOptions());
        EXPECT_TRUE(r.verified);
        EXPECT_EQ(r.numSegments, hc);
    }
}

TEST(PapEquivalence, RandomAutomataSweep)
{
    Rng rng(1234);
    for (int trial = 0; trial < 30; ++trial) {
        const Nfa nfa = randomNfa(rng, /*max_patterns=*/6);
        const InputTrace input =
            randomTextTrace(rng, 1024 + rng.nextBelow(2048),
                            "abcdefgh\n ");
        PapOptions opt = testOptions();
        opt.tdmQuantum = 8 + static_cast<std::uint32_t>(
            rng.nextBelow(64));
        const PapResult r = runPap(
            nfa, input,
            tinyBoard(2 + static_cast<std::uint32_t>(rng.nextBelow(7))),
            opt);
        EXPECT_TRUE(r.verified) << "trial " << trial;
    }
}

TEST(PapEquivalence, EveryOptimizationDisabledInTurn)
{
    const std::vector<RegexRule> rules = {
        {"foo(bar)*", 10}, {"ba+z", 11}, {"q[uv]x", 12}, {"hello", 13}};
    const Nfa nfa = compileRuleset(rules, "ablate");
    Rng rng(99);
    const InputTrace input =
        randomTextTrace(rng, 6000, "fobarzquvxhel ");

    for (int knob = 0; knob < 6; ++knob) {
        PapOptions opt = testOptions();
        switch (knob) {
          case 0: opt.enableCcMerging = false; break;
          case 1: opt.enableParentMerging = false; break;
          case 2: opt.enableAsgMerging = false; break;
          case 3: opt.enableConvergenceChecks = false; break;
          case 4: opt.enableDeactivationChecks = false; break;
          case 5: opt.enableFiv = false; break;
        }
        const PapResult r = runPap(nfa, input, tinyBoard(4), opt);
        EXPECT_TRUE(r.verified) << "knob " << knob;
    }
}

TEST(PapEquivalence, AnchoredRulesOnlyMatchInFirstSegment)
{
    const std::vector<RegexRule> rules = {{"head", 1, /*anchored=*/true},
                                          {"tail", 2}};
    const Nfa nfa = compileRuleset(rules, "anchored");
    const std::string text = "headxxxxtailyyyyheadzzzztail";
    // Repeat to make the input long enough for several segments.
    std::string big;
    for (int i = 0; i < 40; ++i)
        big += text;
    const InputTrace input = InputTrace::fromString(big);
    const PapResult r = runPap(nfa, input, tinyBoard(4), testOptions());
    EXPECT_TRUE(r.verified);
    // The anchored rule fires once, at offset 3.
    std::uint64_t anchored_hits = 0;
    for (const auto &e : r.reports)
        if (e.code == 1)
            ++anchored_hits;
    EXPECT_EQ(anchored_hits, 1u);
}

TEST(PapEquivalence, SpeedupNeverBelowOne)
{
    Rng rng(5);
    const Nfa nfa = randomNfa(rng, 5);
    const InputTrace input = randomTextTrace(rng, 8192, "abcdefgh ");
    const PapResult r = runPap(nfa, input, tinyBoard(8), testOptions());
    EXPECT_TRUE(r.verified);
    EXPECT_GE(r.speedup, 1.0);
    EXPECT_LE(r.speedup, static_cast<double>(r.idealSpeedup) + 1e-9);
}

} // namespace
} // namespace pap
