/**
 * @file
 * Graph analysis tests: predecessors, connected components, symbol
 * ranges (including the range-soundness property that underpins
 * range-guided partitioning), always-active states, parents, and
 * degree statistics.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "engine/reference_engine.h"
#include "nfa/analysis.h"
#include "nfa/glushkov.h"
#include "workload_helpers.h"

namespace pap {
namespace {

TEST(Analysis, Predecessors)
{
    Nfa nfa;
    const auto a = nfa.addState(CharClass::single('a'));
    const auto b = nfa.addState(CharClass::single('b'));
    const auto c = nfa.addState(CharClass::single('c'));
    nfa.addEdge(a, c);
    nfa.addEdge(b, c);
    nfa.addEdge(c, c);
    nfa.finalize();
    const auto pred = buildPredecessors(nfa);
    EXPECT_TRUE(pred[0].empty());
    EXPECT_TRUE(pred[1].empty());
    EXPECT_EQ(pred[2], (std::vector<StateId>{a, b, c}));
}

TEST(Analysis, ConnectedComponentsOfRuleset)
{
    // Rules share no prefixes -> one component per rule.
    const Nfa nfa = compileRuleset(
        {{"abc", 1}, {"xyz", 2}, {"pq", 3}}, "three");
    const Components comps = connectedComponents(nfa);
    EXPECT_EQ(comps.count, 3u);
    std::multiset<std::uint32_t> sizes(comps.sizes.begin(),
                                       comps.sizes.end());
    EXPECT_EQ(sizes, (std::multiset<std::uint32_t>{2, 3, 3}));
    // Every state belongs to a component.
    for (StateId q = 0; q < nfa.size(); ++q)
        EXPECT_LT(comps.of[q], comps.count);
}

TEST(Analysis, ComponentsIgnoreEdgeDirection)
{
    Nfa nfa;
    const auto a = nfa.addState(CharClass::single('a'));
    const auto b = nfa.addState(CharClass::single('b'));
    const auto c = nfa.addState(CharClass::single('c'));
    nfa.addEdge(a, b);
    nfa.addEdge(c, b); // c connects through b despite direction
    nfa.finalize();
    const Components comps = connectedComponents(nfa);
    EXPECT_EQ(comps.count, 1u);
}

TEST(Analysis, RangeDefinition)
{
    // range(s) = union of successors of states labeled with s.
    Nfa nfa;
    const auto a = nfa.addState(CharClass::single('a'));
    const auto b = nfa.addState(CharClass::single('b'));
    const auto c = nfa.addState(CharClass::fromString("ab"));
    nfa.addEdge(a, b);
    nfa.addEdge(c, a);
    nfa.finalize();
    const RangeAnalysis ranges(nfa);
    EXPECT_EQ(ranges.rangeSize('a'), 2u); // succ(a)={b}, succ(c)={a}
    EXPECT_EQ(ranges.rangeSize('b'), 1u); // succ(c)={a}
    EXPECT_EQ(ranges.rangeSize('z'), 0u);
    EXPECT_EQ(ranges.computeRange('a'),
              (std::vector<StateId>{a, b}));
    EXPECT_EQ(ranges.minRange(), 0u);
    EXPECT_EQ(ranges.maxRange(), 2u);
    EXPECT_EQ(ranges.minRangeSymbol(), 0);
}

TEST(Analysis, RangeSizesMatchComputeRange)
{
    Rng rng(12);
    const Nfa nfa = randomNfa(rng, 6);
    const RangeAnalysis ranges(nfa);
    for (int s = 0; s < kAlphabetSize; s += 7)
        EXPECT_EQ(ranges.computeRange(static_cast<Symbol>(s)).size(),
                  ranges.rangeSize(static_cast<Symbol>(s)));
}

TEST(Analysis, RangeSoundnessProperty)
{
    // After any prefix ending in symbol s, every enabled state that
    // is not a spontaneously enabled start is in range(s).
    Rng rng(13);
    for (int trial = 0; trial < 15; ++trial) {
        const Nfa nfa = randomNfa(rng, 5);
        const RangeAnalysis ranges(nfa);
        const InputTrace text =
            randomTextTrace(rng, 200, "abcdefgh ");
        const ReferenceResult ref =
            referenceRun(nfa, text.symbols(), /*record_sets=*/true);
        for (std::size_t i = 0; i < text.size(); i += 13) {
            const Symbol s = text[i];
            const auto range =
                ranges.computeRange(s);
            for (const StateId q : ref.enabledAfter[i]) {
                if (nfa[q].start == StartType::AllInput)
                    continue;
                EXPECT_TRUE(std::binary_search(range.begin(),
                                               range.end(), q))
                    << "state " << q << " outside range of symbol "
                    << int(s);
            }
        }
    }
}

TEST(Analysis, AlwaysActiveStates)
{
    // .*abc : the leading star state is always active; 'a' follows an
    // always-active full-label state, so it is always active too.
    Nfa nfa;
    RegexPtr ast = expandRepeats(parseRegex(".*abc"));
    compileRegexInto(nfa, *ast, 1, /*anchored=*/true);
    nfa.finalize();
    const auto asg = alwaysActiveStates(nfa);
    EXPECT_EQ(asg.size(), 2u); // star position and 'a'

    // AllInput starts are always active by definition.
    const Nfa simple = compileRuleset({{"xy", 1}}, "s");
    const auto asg2 = alwaysActiveStates(simple);
    ASSERT_EQ(asg2.size(), 1u);
    EXPECT_EQ(simple[asg2[0]].start, StartType::AllInput);
}

TEST(Analysis, ParentsMatching)
{
    Nfa nfa;
    const auto a = nfa.addState(CharClass::fromString("ax"));
    const auto b = nfa.addState(CharClass::single('b'));
    const auto leaf = nfa.addState(CharClass::single('a'));
    nfa.addEdge(a, b);
    nfa.addEdge(b, leaf);
    nfa.finalize();
    EXPECT_EQ(parentsMatching(nfa, 'a'), (std::vector<StateId>{a}));
    EXPECT_EQ(parentsMatching(nfa, 'x'), (std::vector<StateId>{a}));
    EXPECT_EQ(parentsMatching(nfa, 'b'), (std::vector<StateId>{b}));
    // 'leaf' matches 'a' but has no successors: not a parent.
    EXPECT_EQ(parentsMatching(nfa, 'q'), (std::vector<StateId>{}));
}

TEST(Analysis, DegreeStats)
{
    Nfa nfa;
    const auto a = nfa.addState(CharClass::single('a'));
    const auto b = nfa.addState(CharClass::single('b'));
    nfa.addEdge(a, a);
    nfa.addEdge(a, b);
    nfa.finalize();
    const DegreeStats ds = degreeStats(nfa);
    EXPECT_DOUBLE_EQ(ds.avgOut, 1.0);
    EXPECT_EQ(ds.maxOut, 2u);
    EXPECT_EQ(ds.selfLoops, 1u);
}

} // namespace
} // namespace pap
