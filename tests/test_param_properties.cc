/**
 * @file
 * Parameterized property sweeps (TEST_P):
 *  - Glushkov-vs-Thompson language agreement over a pattern corpus;
 *  - Hamming/Levenshtein machines vs. brute-force oracles over a
 *    (length, distance) grid;
 *  - parallel == sequential equivalence over a (workload, segments,
 *    quantum, optimization-subset) grid.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "ap/ap_config.h"
#include "common/rng.h"
#include "engine/reference_engine.h"
#include "nfa/builders.h"
#include "nfa/classical.h"
#include "nfa/glushkov.h"
#include "pap/runner.h"
#include "workload_helpers.h"

namespace pap {
namespace {

// ---------------------------------------------------------------
// Pattern corpus: Glushkov agrees with the Thompson oracle.
// ---------------------------------------------------------------

class PatternAgreement : public ::testing::TestWithParam<const char *>
{};

TEST_P(PatternAgreement, GlushkovMatchesThompson)
{
    const std::string pattern = GetParam();
    Rng rng(std::hash<std::string>{}(pattern));
    const InputTrace text = randomTextTrace(rng, 400, "abcdefgh\n ");

    RegexPtr ast = expandRepeats(parseRegex(pattern));
    Nfa hom;
    compileRegexInto(hom, *ast, 1, /*anchored=*/false);
    hom.finalize();
    const ReferenceResult ref = referenceRun(hom, text.symbols());

    const ClassicalNfa oracle = thompson(*ast, 1);
    const auto accepted = oracle.simulate(text.symbols(), true);

    std::set<std::uint64_t> got, expect;
    for (const auto &e : ref.reports)
        got.insert(e.offset);
    for (std::size_t i = 0; i < accepted.size(); ++i)
        if (!accepted[i].empty())
            expect.insert(i);
    EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, PatternAgreement,
    ::testing::Values(
        "abc", "a|b|c", "(ab|ba)+", "a*b*c*", "a.{2}b", "[a-d]{3,5}",
        "(a(b(c)d)e)", "x(yz|zy)*x", "a+b+", "((a|b)(c|d))+",
        "[^ab]c", "a?a?a?aaa", "(ab)*(ba)*", "\\w\\s\\d",
        "(a|ab)(c|bc)d?", "e(f|g){2,4}h", "a.*b.*c", "((a)|(b))*c"));

// ---------------------------------------------------------------
// Distance machines over a (length, distance) grid.
// ---------------------------------------------------------------

class DistanceGrid
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    static int
    mismatches(const std::string &text, std::size_t end,
               const std::string &pattern)
    {
        if (end + 1 < pattern.size())
            return 1 << 20;
        int count = 0;
        const std::size_t start = end + 1 - pattern.size();
        for (std::size_t i = 0; i < pattern.size(); ++i)
            if (text[start + i] != pattern[i])
                ++count;
        return count;
    }
};

TEST_P(DistanceGrid, HammingMachineEqualsSlidingWindowOracle)
{
    const auto [m, d] = GetParam();
    Rng rng(100 + m * 10 + d);
    std::string pattern;
    for (int i = 0; i < m; ++i)
        pattern += "ACGT"[rng.nextBelow(4)];
    const Nfa nfa = buildHamming(pattern, d, 1, "h");

    std::string text;
    for (int i = 0; i < 200; ++i)
        text += "ACGT"[rng.nextBelow(4)];
    const InputTrace trace = InputTrace::fromString(text);
    const ReferenceResult ref = referenceRun(nfa, trace.symbols());
    std::set<std::uint64_t> got;
    for (const auto &e : ref.reports)
        got.insert(e.offset);

    for (std::size_t end = 0; end < text.size(); ++end)
        EXPECT_EQ(got.contains(end),
                  mismatches(text, end, pattern) <= d)
            << "end=" << end;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DistanceGrid,
    ::testing::Combine(::testing::Values(4, 8, 12, 24),
                       ::testing::Values(0, 1, 3)));

// ---------------------------------------------------------------
// Equivalence grid: workload x segments x quantum x optimizations.
// ---------------------------------------------------------------

struct EquivalenceCase
{
    const char *workload; // generator family
    std::uint32_t halfCores;
    std::uint32_t quantum;
    int disabledKnob; // -1 = all optimizations on
};

void
PrintTo(const EquivalenceCase &c, std::ostream *os)
{
    *os << c.workload << "/hc" << c.halfCores << "/q" << c.quantum
        << "/knob" << c.disabledKnob;
}

class EquivalenceGrid
    : public ::testing::TestWithParam<EquivalenceCase>
{
  protected:
    static Nfa
    build(const std::string &workload)
    {
        if (workload == "literals")
            return compileRuleset({{"abcd", 1},
                                   {"bcde", 2},
                                   {"aaa", 3},
                                   {"dcb", 4}},
                                  workload);
        if (workload == "dotstar")
            return compileRuleset({{"ab.*cd", 1},
                                   {"ef.*gh", 2},
                                   {"b.*a", 3}},
                                  workload);
        if (workload == "classes")
            return compileRuleset({{"[a-d]{2}[ef]+g", 1},
                                   {"[^x]h[ab]", 2}},
                                  workload);
        if (workload == "anchored")
            return compileRuleset({{"head", 1, true},
                                   {"body", 2, false}},
                                  workload);
        if (workload == "hamming")
            return buildHamming("abcdabcd", 2, 1, workload);
        PAP_PANIC("unknown workload");
    }
};

TEST_P(EquivalenceGrid, ParallelEqualsSequential)
{
    const EquivalenceCase c = GetParam();
    const Nfa nfa = build(c.workload);
    Rng rng(std::hash<std::string>{}(c.workload) ^ c.quantum);
    const InputTrace input =
        randomTextTrace(rng, 4096, "abcdefghx \n");

    ApConfig board = ApConfig::d480(1);
    board.devicesPerRank = c.halfCores;
    board.halfCoresPerDevice = 1;

    PapOptions opt;
    opt.tdmQuantum = c.quantum;
    switch (c.disabledKnob) {
      case 0: opt.enableCcMerging = false; break;
      case 1: opt.enableParentMerging = false; break;
      case 2: opt.enableAsgMerging = false; break;
      case 3: opt.enableConvergenceChecks = false; break;
      case 4: opt.enableDeactivationChecks = false; break;
      case 5: opt.enableFiv = false; break;
      default: break;
    }
    const PapResult r = runPap(nfa, input, board, opt);
    EXPECT_TRUE(r.verified);
    EXPECT_GE(r.speedup, 1.0);
}

std::vector<EquivalenceCase>
equivalenceCases()
{
    std::vector<EquivalenceCase> cases;
    for (const char *workload :
         {"literals", "dotstar", "classes", "anchored", "hamming"}) {
        for (const std::uint32_t hc : {3u, 8u})
            for (const std::uint32_t quantum : {8u, 125u})
                cases.push_back(
                    EquivalenceCase{workload, hc, quantum, -1});
        for (int knob = 0; knob < 6; ++knob)
            cases.push_back(EquivalenceCase{workload, 5, 32, knob});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, EquivalenceGrid,
                         ::testing::ValuesIn(equivalenceCases()));

} // namespace
} // namespace pap
