/**
 * @file
 * Range-guided partitioning tests: boundary-symbol profiling and the
 * segment-cutting rules (coverage, snapping, degenerate inputs).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nfa/glushkov.h"
#include "pap/partitioner.h"
#include "workload_helpers.h"

namespace pap {
namespace {

TEST(Partitioner, PrefersFrequentSmallRangeSymbol)
{
    // 'z' never labels a transition target: range 0; the trace makes
    // it frequent, so it must win over the letters of the rules.
    const Nfa nfa = compileRuleset({{"abc", 1}, {"bcd", 2}}, "m");
    const RangeAnalysis ranges(nfa);
    std::string text;
    for (int i = 0; i < 4000; ++i)
        text += (i % 4 == 0) ? 'z' : "abcd"[i % 3];
    const InputTrace input = InputTrace::fromString(text);
    const PartitionProfile profile =
        choosePartitionSymbol(ranges, input, 8);
    EXPECT_EQ(profile.symbol, 'z');
    EXPECT_EQ(profile.rangeSize, 0u);
    EXPECT_GT(profile.frequency, 900u);
}

TEST(Partitioner, InfrequentSymbolDoesNotQualify)
{
    const Nfa nfa = compileRuleset({{"ab", 1}}, "m");
    const RangeAnalysis ranges(nfa);
    // 'z' has range 0 but appears only 3 times; 'a' is everywhere.
    std::string text(5000, 'a');
    text[100] = text[2000] = text[4000] = 'z';
    const InputTrace input = InputTrace::fromString(text);
    const PartitionProfile profile =
        choosePartitionSymbol(ranges, input, 8);
    EXPECT_EQ(profile.symbol, 'a');
}

TEST(Partitioner, SegmentsCoverInputExactly)
{
    Rng rng(3);
    const InputTrace input = randomTextTrace(rng, 10007, "abcz");
    for (const std::uint32_t segs : {1u, 2u, 7u, 16u, 64u}) {
        const auto segments = partitionInput(input, 'z', segs);
        ASSERT_FALSE(segments.empty());
        EXPECT_LE(segments.size(), segs);
        EXPECT_EQ(segments.front().begin, 0u);
        EXPECT_EQ(segments.back().end, input.size());
        for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
            EXPECT_EQ(segments[i].end, segments[i + 1].begin);
            EXPECT_LT(segments[i].begin, segments[i].end);
        }
    }
}

TEST(Partitioner, CutsSnapToBoundarySymbol)
{
    // 'z' every 10 symbols: every interior cut should land just after
    // a 'z' (the boundary symbol is the segment's last symbol).
    std::string text;
    for (int i = 0; i < 5000; ++i)
        text += (i % 10 == 9) ? 'z' : 'a';
    const InputTrace input = InputTrace::fromString(text);
    const auto segments = partitionInput(input, 'z', 8);
    ASSERT_EQ(segments.size(), 8u);
    for (std::size_t i = 0; i + 1 < segments.size(); ++i)
        EXPECT_EQ(input[segments[i].end - 1], 'z');
}

TEST(Partitioner, MissingBoundaryStillCutsEvenly)
{
    const InputTrace input = InputTrace::fromString(
        std::string(1000, 'a'));
    const auto segments = partitionInput(input, 'z', 4);
    ASSERT_EQ(segments.size(), 4u);
    for (const auto &s : segments)
        EXPECT_NEAR(static_cast<double>(s.length()), 250.0, 1.0);
}

TEST(Partitioner, TinyInputs)
{
    const InputTrace one = InputTrace::fromString("x");
    const auto segments = partitionInput(one, 'x', 16);
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].length(), 1u);

    const InputTrace three = InputTrace::fromString("abc");
    const auto s3 = partitionInput(three, 'b', 2);
    EXPECT_EQ(s3.back().end, 3u);
}

} // namespace
} // namespace pap
