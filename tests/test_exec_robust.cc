/**
 * @file
 * Resilience contract of host-parallel execution: byte-identical
 * results for every thread count (clean and under injected worker
 * faults), the watchdog -> retry -> sequential-oracle escalation, and
 * crash-consistent checkpoint/resume equivalence.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "ap/ap_config.h"
#include "common/error.h"
#include "common/rng.h"
#include "engine/trace.h"
#include "nfa/glushkov.h"
#include "pap/exec/checkpoint.h"
#include "pap/fault_injector.h"
#include "pap/multistream.h"
#include "pap/runner.h"
#include "pap/speculative.h"
#include "workload_helpers.h"

namespace pap {
namespace {

ApConfig
smallBoard(std::uint32_t half_cores)
{
    ApConfig cfg = ApConfig::d480(1);
    cfg.devicesPerRank = half_cores;
    cfg.halfCoresPerDevice = 1;
    return cfg;
}

struct Workload
{
    Nfa nfa;
    InputTrace input;
};

Workload
robustWorkload()
{
    Rng rng(77);
    return Workload{compileRuleset({{"ab.*cd", 1}, {"fgh", 2}}, "m"),
                    randomTextTrace(rng, 16384, "abcdfgh ")};
}

/** The per-figure facts of a run that must be scheduling-invariant. */
void
expectSameRun(const PapResult &a, const PapResult &b)
{
    EXPECT_EQ(a.reports, b.reports);
    EXPECT_EQ(a.papCycles, b.papCycles);
    EXPECT_EQ(a.baselineCycles, b.baselineCycles);
    EXPECT_DOUBLE_EQ(a.speedup, b.speedup);
    EXPECT_EQ(a.numSegments, b.numSegments);
    EXPECT_DOUBLE_EQ(a.flowsInRange, b.flowsInRange);
    EXPECT_DOUBLE_EQ(a.flowsAfterCc, b.flowsAfterCc);
    EXPECT_DOUBLE_EQ(a.flowsAfterParent, b.flowsAfterParent);
    EXPECT_DOUBLE_EQ(a.avgActiveFlows, b.avgActiveFlows);
    EXPECT_DOUBLE_EQ(a.switchOverheadPct, b.switchOverheadPct);
    EXPECT_DOUBLE_EQ(a.reportInflation, b.reportInflation);
    EXPECT_EQ(a.flowTransitions, b.flowTransitions);
    EXPECT_EQ(a.flowSymbolCycles, b.flowSymbolCycles);
    ASSERT_EQ(a.segments.size(), b.segments.size());
    for (std::size_t j = 0; j < a.segments.size(); ++j) {
        EXPECT_EQ(a.segments[j].begin, b.segments[j].begin);
        EXPECT_EQ(a.segments[j].length, b.segments[j].length);
        EXPECT_EQ(a.segments[j].flows, b.segments[j].flows);
        EXPECT_EQ(a.segments[j].deactivated,
                  b.segments[j].deactivated);
        EXPECT_EQ(a.segments[j].converged, b.segments[j].converged);
        EXPECT_EQ(a.segments[j].ranToEnd, b.segments[j].ranToEnd);
        EXPECT_EQ(a.segments[j].truePaths, b.segments[j].truePaths);
        EXPECT_EQ(a.segments[j].totalPaths, b.segments[j].totalPaths);
        EXPECT_EQ(a.segments[j].tDone, b.segments[j].tDone);
        EXPECT_EQ(a.segments[j].tResolve, b.segments[j].tResolve);
        EXPECT_EQ(a.segments[j].entries, b.segments[j].entries);
    }
}

// --- Thread-count determinism ---------------------------------------

TEST(ThreadDeterminism, CleanRunIsByteIdenticalAcrossThreads)
{
    const Workload w = robustWorkload();
    const ApConfig board = smallBoard(8);
    PapOptions base;
    base.threads = 1;
    const PapResult ref = runPap(w.nfa, w.input, board, base);
    ASSERT_TRUE(ref.status.ok());
    ASSERT_TRUE(ref.verified);
    EXPECT_EQ(ref.threadsUsed, 1u);
    for (const std::uint32_t threads : {2u, 8u}) {
        PapOptions opt;
        opt.threads = threads;
        const PapResult r = runPap(w.nfa, w.input, board, opt);
        ASSERT_TRUE(r.status.ok());
        EXPECT_EQ(r.threadsUsed, threads);
        expectSameRun(ref, r);
    }
}

TEST(ThreadDeterminism, StallFaultsAreByteIdenticalAcrossThreads)
{
    const Workload w = robustWorkload();
    const ApConfig board = smallBoard(8);
    std::vector<PapResult> runs;
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
        auto fi =
            FaultInjector::fromSpec("stall-worker:1:0.5", 21).value();
        PapOptions opt;
        opt.threads = threads;
        opt.segmentDeadlineMs = 10.0; // keep the stalls short
        opt.retryBackoffBaseMs = 0;
        opt.faultInjector = &fi;
        runs.push_back(runPap(w.nfa, w.input, board, opt));
        ASSERT_TRUE(runs.back().status.ok());
        // Stalls are detected by the watchdog and healed by retry, so
        // the run still verifies.
        EXPECT_TRUE(runs.back().verified);
        EXPECT_GT(runs.back().segmentsRetried, 0u);
        EXPECT_EQ(fi.recovered(), fi.injected());
    }
    expectSameRun(runs[0], runs[1]);
    expectSameRun(runs[0], runs[2]);
    EXPECT_EQ(runs[0].segmentsRetried, runs[1].segmentsRetried);
    EXPECT_EQ(runs[0].segmentsRetried, runs[2].segmentsRetried);
}

TEST(ThreadDeterminism, CrashFaultsAreByteIdenticalAcrossThreads)
{
    const Workload w = robustWorkload();
    const ApConfig board = smallBoard(8);
    std::vector<PapResult> runs;
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
        auto fi =
            FaultInjector::fromSpec("crash-worker:1:0.5", 33).value();
        PapOptions opt;
        opt.threads = threads;
        opt.retryBackoffBaseMs = 0;
        opt.faultInjector = &fi;
        runs.push_back(runPap(w.nfa, w.input, board, opt));
        ASSERT_TRUE(runs.back().status.ok());
        EXPECT_TRUE(runs.back().verified);
        EXPECT_GT(runs.back().segmentsRetried, 0u);
    }
    expectSameRun(runs[0], runs[1]);
    expectSameRun(runs[0], runs[2]);
}

// --- Watchdog -> retry -> oracle escalation --------------------------

TEST(Escalation, TransientCrashHealsByRetryWithoutDegrading)
{
    const Workload w = robustWorkload();
    const ApConfig board = smallBoard(8);
    const PapResult clean = runPap(w.nfa, w.input, board);

    // Budget 1: each selected segment crashes once, then retries
    // cleanly — no oracle fallback, no degradation.
    auto fi = FaultInjector::fromSpec("crash-worker:1", 5).value();
    PapOptions opt;
    opt.retryBackoffBaseMs = 0;
    opt.faultInjector = &fi;
    const PapResult r = runPap(w.nfa, w.input, board, opt);
    ASSERT_TRUE(r.status.ok());
    EXPECT_TRUE(r.verified);
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.segmentsRetried, r.numSegments);
    EXPECT_EQ(r.segmentsRecovered, 0u);
    EXPECT_EQ(fi.recovered(), fi.injected());
    expectSameRun(clean, r);
}

TEST(Escalation, PermanentCrashFallsBackToSegmentOracle)
{
    const Workload w = robustWorkload();
    const ApConfig board = smallBoard(8);
    const PapResult clean = runPap(w.nfa, w.input, board);

    // Budget 8 >= maxRetries + 1: the fault outlives every retry, so
    // the affected segments fall back to the sequential oracle.
    auto fi = FaultInjector::fromSpec("crash-worker:8", 5).value();
    PapOptions opt;
    opt.retryBackoffBaseMs = 0;
    opt.faultInjector = &fi;
    const PapResult r = runPap(w.nfa, w.input, board, opt);
    ASSERT_TRUE(r.status.ok());
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.segmentsRecovered, r.numSegments);
    EXPECT_EQ(fi.detected(), fi.injected());
    EXPECT_EQ(fi.recovered(), fi.injected());
    // The oracle continuation reproduces the exact report stream.
    EXPECT_EQ(r.reports, clean.reports);
}

TEST(Escalation, WatchdogTimeoutEscalatesToOracleWhenStallPersists)
{
    const Workload w = robustWorkload();
    const ApConfig board = smallBoard(8);
    const PapResult clean = runPap(w.nfa, w.input, board);

    auto fi = FaultInjector::fromSpec("stall-worker:8:0.4", 5).value();
    PapOptions opt;
    opt.segmentDeadlineMs = 10.0;
    opt.maxSegmentRetries = 1;
    opt.retryBackoffBaseMs = 0;
    opt.faultInjector = &fi;
    const PapResult r = runPap(w.nfa, w.input, board, opt);
    ASSERT_TRUE(r.status.ok());
    EXPECT_GT(r.segmentsRecovered, 0u);
    EXPECT_LT(r.segmentsRecovered, r.numSegments);
    EXPECT_EQ(r.reports, clean.reports);
}

TEST(Escalation, NegativeDeadlineDisablesTheWatchdog)
{
    const Workload w = robustWorkload();
    PapOptions opt;
    opt.segmentDeadlineMs = -1.0;
    const PapResult r =
        runPap(w.nfa, w.input, smallBoard(8), opt);
    ASSERT_TRUE(r.status.ok());
    EXPECT_TRUE(r.verified);
}

// --- Checkpoint / resume --------------------------------------------

class CheckpointResume : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "papsim_resume_test.ckpt";
        exec::removeCheckpoint(path_);
    }
    void
    TearDown() override
    {
        exec::removeCheckpoint(path_);
    }

    bool
    checkpointExists() const
    {
        std::ifstream probe(path_, std::ios::binary);
        return probe.good();
    }

    std::string path_;
};

TEST_F(CheckpointResume, KilledRunResumesByteIdentically)
{
    const Workload w = robustWorkload();
    const ApConfig board = smallBoard(8);
    const PapResult full = runPap(w.nfa, w.input, board);
    ASSERT_TRUE(full.status.ok());
    ASSERT_GE(full.numSegments, 3u);

    // Kill the run after composing segment 1; the checkpoint must
    // survive on disk.
    PapOptions killed;
    killed.checkpointPath = path_;
    killed.stopAfterSegment = 1;
    const PapResult dead = runPap(w.nfa, w.input, board, killed);
    EXPECT_FALSE(dead.status.ok());
    EXPECT_EQ(dead.status.code(), ErrorCode::Cancelled);
    ASSERT_TRUE(checkpointExists());

    // Resume: segments 0..1 come from the checkpoint, the rest run.
    PapOptions resume;
    resume.checkpointPath = path_;
    const PapResult r = runPap(w.nfa, w.input, board, resume);
    ASSERT_TRUE(r.status.ok());
    EXPECT_TRUE(r.resumedFromCheckpoint);
    EXPECT_EQ(r.resumedSegments, 2u);
    EXPECT_TRUE(r.verified);
    expectSameRun(full, r);
    // A completed run cleans its checkpoint up.
    EXPECT_FALSE(checkpointExists());
}

TEST_F(CheckpointResume, EveryKillPointResumesToTheSameResult)
{
    const Workload w = robustWorkload();
    const ApConfig board = smallBoard(8);
    const PapResult full = runPap(w.nfa, w.input, board);
    ASSERT_TRUE(full.status.ok());

    // Stopping after the last segment is a completed run, not a
    // kill, so only mid-chain kill points are exercised.
    for (std::uint32_t stop = 0; stop + 1 < full.numSegments; ++stop) {
        exec::removeCheckpoint(path_);
        PapOptions killed;
        killed.checkpointPath = path_;
        killed.stopAfterSegment = static_cast<std::int64_t>(stop);
        const PapResult dead = runPap(w.nfa, w.input, board, killed);
        EXPECT_FALSE(dead.status.ok()) << "stop " << stop;

        PapOptions resume;
        resume.checkpointPath = path_;
        const PapResult r = runPap(w.nfa, w.input, board, resume);
        ASSERT_TRUE(r.status.ok()) << "stop " << stop;
        EXPECT_EQ(r.resumedSegments, stop + 1) << "stop " << stop;
        expectSameRun(full, r);
    }
}

TEST_F(CheckpointResume, ResumeWithDifferentThreadCountStillMatches)
{
    const Workload w = robustWorkload();
    const ApConfig board = smallBoard(8);
    const PapResult full = runPap(w.nfa, w.input, board);

    PapOptions killed;
    killed.checkpointPath = path_;
    killed.stopAfterSegment = 0;
    killed.threads = 1;
    ASSERT_FALSE(runPap(w.nfa, w.input, board, killed).status.ok());

    PapOptions resume;
    resume.checkpointPath = path_;
    resume.threads = 4; // identity hash ignores execution knobs
    const PapResult r = runPap(w.nfa, w.input, board, resume);
    ASSERT_TRUE(r.status.ok());
    EXPECT_TRUE(r.resumedFromCheckpoint);
    expectSameRun(full, r);
}

TEST_F(CheckpointResume, CorruptCheckpointFallsBackToFreshRun)
{
    const Workload w = robustWorkload();
    const ApConfig board = smallBoard(8);
    const PapResult full = runPap(w.nfa, w.input, board);

    PapOptions killed;
    killed.checkpointPath = path_;
    killed.stopAfterSegment = 1;
    ASSERT_FALSE(runPap(w.nfa, w.input, board, killed).status.ok());

    // Flip a payload byte: the CRC rejects the file and the run
    // starts fresh instead of resuming from damaged state.
    {
        std::fstream file(
            path_, std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(file.good());
        char byte = 0;
        file.seekg(32);
        file.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0xff);
        file.seekp(32);
        file.write(&byte, 1);
    }
    PapOptions resume;
    resume.checkpointPath = path_;
    const PapResult r = runPap(w.nfa, w.input, board, resume);
    ASSERT_TRUE(r.status.ok());
    EXPECT_FALSE(r.resumedFromCheckpoint);
    expectSameRun(full, r);
}

TEST_F(CheckpointResume, ForeignCheckpointIsIgnored)
{
    const Workload w = robustWorkload();
    const ApConfig board = smallBoard(8);

    // Checkpoint a run over a different input...
    Rng rng(123);
    const InputTrace other = randomTextTrace(rng, 16384, "abcdfgh ");
    PapOptions killed;
    killed.checkpointPath = path_;
    killed.stopAfterSegment = 0;
    ASSERT_FALSE(runPap(w.nfa, other, board, killed).status.ok());
    ASSERT_TRUE(checkpointExists());

    // ...then run the real input against it: the identity hash
    // mismatches, so the checkpoint is ignored, not applied.
    const PapResult full = runPap(w.nfa, w.input, board);
    PapOptions resume;
    resume.checkpointPath = path_;
    const PapResult r = runPap(w.nfa, w.input, board, resume);
    ASSERT_TRUE(r.status.ok());
    EXPECT_FALSE(r.resumedFromCheckpoint);
    expectSameRun(full, r);
}

TEST_F(CheckpointResume, ResumeUnderWorkerFaultsKeepsReportsExact)
{
    const Workload w = robustWorkload();
    const ApConfig board = smallBoard(8);
    const PapResult clean = runPap(w.nfa, w.input, board);

    auto kill_fi =
        FaultInjector::fromSpec("crash-worker:1:0.5", 21).value();
    PapOptions killed;
    killed.checkpointPath = path_;
    killed.stopAfterSegment = 1;
    killed.retryBackoffBaseMs = 0;
    killed.faultInjector = &kill_fi;
    ASSERT_FALSE(runPap(w.nfa, w.input, board, killed).status.ok());

    auto resume_fi =
        FaultInjector::fromSpec("crash-worker:1:0.5", 21).value();
    PapOptions resume;
    resume.checkpointPath = path_;
    resume.retryBackoffBaseMs = 0;
    resume.faultInjector = &resume_fi;
    const PapResult r = runPap(w.nfa, w.input, board, resume);
    ASSERT_TRUE(r.status.ok());
    EXPECT_TRUE(r.resumedFromCheckpoint);
    EXPECT_EQ(r.reports, clean.reports);
}

// --- The other runners ----------------------------------------------

TEST(ThreadDeterminism, SpeculativeRunIsIdenticalAcrossThreads)
{
    const Workload w = robustWorkload();
    const ApConfig board = smallBoard(8);
    SpeculationOptions base;
    base.threads = 1;
    const SpeculationResult ref =
        runSpeculative(w.nfa, w.input, board, base);
    for (const std::uint32_t threads : {2u, 8u}) {
        SpeculationOptions opt;
        opt.threads = threads;
        const SpeculationResult r =
            runSpeculative(w.nfa, w.input, board, opt);
        EXPECT_EQ(r.threadsUsed, threads);
        EXPECT_EQ(ref.reports, r.reports);
        EXPECT_EQ(ref.papCycles, r.papCycles);
        EXPECT_DOUBLE_EQ(ref.accuracy, r.accuracy);
        EXPECT_EQ(ref.verified, r.verified);
    }
}

TEST(ThreadDeterminism, MultiStreamRunIsIdenticalAcrossThreads)
{
    Rng rng(7);
    const Nfa nfa = compileRuleset({{"ab+c", 1}, {"de", 2}}, "ms");
    std::vector<InputTrace> streams;
    for (int i = 0; i < 6; ++i)
        streams.push_back(randomTextTrace(rng, 4096, "abcde "));
    const ApConfig board = smallBoard(2);
    PapOptions base;
    base.threads = 1;
    const MultiStreamResult ref =
        runMultiStream(nfa, streams, board, base);
    ASSERT_TRUE(ref.status.ok());
    for (const std::uint32_t threads : {2u, 8u}) {
        PapOptions opt;
        opt.threads = threads;
        const MultiStreamResult r =
            runMultiStream(nfa, streams, board, opt);
        ASSERT_TRUE(r.status.ok());
        EXPECT_EQ(r.threadsUsed, threads);
        EXPECT_EQ(ref.reports, r.reports);
        EXPECT_EQ(ref.totalCycles, r.totalCycles);
        EXPECT_EQ(ref.switchCycles, r.switchCycles);
        EXPECT_EQ(ref.streamDone, r.streamDone);
        EXPECT_EQ(ref.verified, r.verified);
    }
}

} // namespace
} // namespace pap
