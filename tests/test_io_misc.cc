/**
 * @file
 * Remaining I/O and logging coverage: file-based NFA/trace round
 * trips, log-level gating, and engine scratch epoch behaviour.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>
#include <fstream>

#include "common/logging.h"
#include "engine/functional_engine.h"
#include "engine/trace.h"
#include "nfa/glushkov.h"
#include "nfa/nfa_io.h"

namespace pap {
namespace {

class TempDir
{
  public:
    TempDir()
    {
        path = std::filesystem::temp_directory_path() /
               ("papsim_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
    std::string
    file(const char *name) const
    {
        return (path / name).string();
    }

  private:
    std::filesystem::path path;
};

TEST(IoMisc, NfaFileRoundTrip)
{
    TempDir dir;
    const Nfa nfa = compileRuleset({{"ab+c", 5}}, "file-rt");
    const std::string path = dir.file("m.nfa");
    saveNfaFile(nfa, path);
    const Nfa back = loadNfaFile(path);
    EXPECT_EQ(back.size(), nfa.size());
    EXPECT_EQ(back.name(), "file-rt");
}

TEST(IoMisc, TraceFileRoundTrip)
{
    TempDir dir;
    const std::string path = dir.file("t.bin");
    {
        std::ofstream os(path, std::ios::binary);
        const unsigned char bytes[] = {0, 10, 200, 255, 'a'};
        os.write(reinterpret_cast<const char *>(bytes), sizeof(bytes));
    }
    const InputTrace t = InputTrace::fromFile(path);
    ASSERT_EQ(t.size(), 5u);
    EXPECT_EQ(t[0], 0);
    EXPECT_EQ(t[2], 200);
    EXPECT_EQ(t[3], 255);
    EXPECT_EQ(t[4], 'a');
}

TEST(IoMisc, LogLevelGatesOutput)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    warn("this must not crash while silenced");
    inform("nor this");
    setLogLevel(LogLevel::Debug);
    EXPECT_GE(logLevel(), LogLevel::Info);
    setLogLevel(saved);
}

TEST(IoMisc, ScratchEpochIsolationAcrossManyResets)
{
    // Repeated resets must never let stale marks suppress seeds.
    const Nfa nfa = compileRuleset({{"abc", 1}}, "m");
    const CompiledNfa cnfa(nfa);
    EngineScratch scratch(cnfa.size());
    FunctionalEngine a(cnfa, false, &scratch);
    FunctionalEngine b(cnfa, false, &scratch);
    for (int i = 0; i < 1000; ++i) {
        a.reset({1}, 0);
        b.reset({1, 2}, 0);
        EXPECT_EQ(a.activeCount(), 1u);
        EXPECT_EQ(b.activeCount(), 2u);
    }
}

} // namespace
} // namespace pap
