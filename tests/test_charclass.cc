/**
 * @file
 * Unit tests for CharClass, the 256-bit STE label.
 */

#include <gtest/gtest.h>

#include "common/charclass.h"

namespace pap {
namespace {

TEST(CharClass, EmptyAndFull)
{
    CharClass empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.count(), 0);
    EXPECT_EQ(empty.lowest(), -1);
    EXPECT_EQ(empty.toString(), "[]");

    const CharClass full = CharClass::all();
    EXPECT_TRUE(full.full());
    EXPECT_EQ(full.count(), 256);
    EXPECT_EQ(full.toString(), "*");
}

TEST(CharClass, Single)
{
    const CharClass c = CharClass::single('a');
    EXPECT_EQ(c.count(), 1);
    EXPECT_TRUE(c.test('a'));
    EXPECT_FALSE(c.test('b'));
    EXPECT_EQ(c.toString(), "a");
    EXPECT_EQ(c.lowest(), 'a');
}

TEST(CharClass, Range)
{
    const CharClass c = CharClass::range('a', 'f');
    EXPECT_EQ(c.count(), 6);
    for (char ch = 'a'; ch <= 'f'; ++ch)
        EXPECT_TRUE(c.test(static_cast<Symbol>(ch)));
    EXPECT_FALSE(c.test('g'));
    EXPECT_EQ(c.toString(), "[a-f]");
}

TEST(CharClass, FullByteRangeBoundaries)
{
    const CharClass c = CharClass::range(0, 255);
    EXPECT_TRUE(c.full());
    const CharClass hi = CharClass::range(250, 255);
    EXPECT_EQ(hi.count(), 6);
    EXPECT_TRUE(hi.test(255));
    EXPECT_FALSE(hi.test(249));
}

TEST(CharClass, Complement)
{
    const CharClass c = CharClass::single('x').complement();
    EXPECT_EQ(c.count(), 255);
    EXPECT_FALSE(c.test('x'));
    EXPECT_TRUE(c.test('y'));
}

TEST(CharClass, SetOperations)
{
    CharClass a = CharClass::range('a', 'd');
    const CharClass b = CharClass::range('c', 'f');
    EXPECT_TRUE(a.intersects(b));
    a &= b;
    EXPECT_EQ(a.count(), 2); // c, d
    const CharClass u = CharClass::single('p') | CharClass::single('q');
    EXPECT_EQ(u.count(), 2);
    EXPECT_FALSE(u.intersects(CharClass::single('r')));
}

TEST(CharClass, FromString)
{
    const CharClass c = CharClass::fromString("abba");
    EXPECT_EQ(c.count(), 2);
    EXPECT_TRUE(c.test('a') && c.test('b'));
}

TEST(CharClass, NthSetAndToSymbols)
{
    const CharClass c = CharClass::fromString("zax");
    EXPECT_EQ(c.nthSet(0), 'a');
    EXPECT_EQ(c.nthSet(1), 'x');
    EXPECT_EQ(c.nthSet(2), 'z');
    const std::vector<Symbol> symbols = c.toSymbols();
    ASSERT_EQ(symbols.size(), 3u);
    EXPECT_EQ(symbols[0], 'a');
    EXPECT_EQ(symbols[2], 'z');
}

TEST(CharClass, ToStringEscapesAndRuns)
{
    CharClass c = CharClass::range('0', '3');
    c.set('\n');
    const std::string s = c.toString();
    EXPECT_NE(s.find("\\x0a"), std::string::npos);
    EXPECT_NE(s.find("0-3"), std::string::npos);
}

TEST(CharClass, TwoSymbolRunHasNoDash)
{
    const CharClass c = CharClass::fromString("ab");
    EXPECT_EQ(c.toString(), "[ab]");
}

} // namespace
} // namespace pap
