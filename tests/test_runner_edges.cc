/**
 * @file
 * Runner edge cases and diagnostics: segment-count capping on short
 * inputs, per-segment diagnostics consistency, boundary-symbol
 * reporting, sequential fallback, and option plumbing.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "ap/ap_config.h"
#include "common/rng.h"
#include "nfa/glushkov.h"
#include "obs/metrics.h"
#include "pap/runner.h"
#include "workload_helpers.h"

namespace pap {
namespace {

ApConfig
tinyBoard(std::uint32_t half_cores)
{
    ApConfig cfg = ApConfig::d480(1);
    cfg.devicesPerRank = half_cores;
    cfg.halfCoresPerDevice = 1;
    return cfg;
}

TEST(RunnerEdges, ShortInputCapsSegmentCount)
{
    const Nfa nfa = compileRuleset({{"ab", 1}}, "m");
    PapOptions opt;
    opt.tdmQuantum = 125;
    // 600 symbols / (2 x 125) = 2 segments even on a 16-half-core
    // board.
    Rng rng(81);
    const InputTrace input = randomTextTrace(rng, 600, "ab ");
    const PapResult r = runPap(nfa, input, tinyBoard(16), opt);
    EXPECT_EQ(r.numSegments, 2u);
    EXPECT_TRUE(r.verified);
}

TEST(RunnerEdges, VeryShortInputFallsBackToSequential)
{
    const Nfa nfa = compileRuleset({{"ab", 1}}, "m");
    const InputTrace input = InputTrace::fromString("ababab");
    const PapResult r = runPap(nfa, input, tinyBoard(16));
    EXPECT_EQ(r.numSegments, 1u);
    EXPECT_DOUBLE_EQ(r.speedup, 1.0);
    EXPECT_TRUE(r.verified);
    ASSERT_EQ(r.reports.size(), 3u);
}

TEST(RunnerEdges, SegmentDiagnosticsAreConsistent)
{
    Rng rng(82);
    const Nfa nfa = compileRuleset(
        {{"abc.*de", 1}, {"fgh", 2}, {"aab", 3}}, "m");
    const InputTrace input =
        randomTextTrace(rng, 16384, "abcdefgh ");
    const PapResult r = runPap(nfa, input, tinyBoard(8));
    ASSERT_EQ(r.segments.size(), r.numSegments);

    std::uint64_t covered = 0;
    std::uint64_t entries = 0;
    for (std::size_t j = 0; j < r.segments.size(); ++j) {
        const auto &d = r.segments[j];
        EXPECT_EQ(d.begin, covered);
        covered += d.length;
        entries += d.entries;
        // Flow outcomes partition the planned flows (+1 ASG flow is
        // not an enumeration flow and is excluded from all counters).
        EXPECT_EQ(d.deactivated + d.converged + d.ranToEnd, d.flows)
            << "segment " << j;
        EXPECT_LE(d.truePaths, d.totalPaths);
        EXPECT_LE(d.tDone, d.tResolve);
        if (j == 0) {
            EXPECT_EQ(d.flows, 0u); // golden segment
            EXPECT_EQ(d.totalPaths, 0u);
        }
    }
    EXPECT_EQ(covered, input.size());
    EXPECT_EQ(entries, r.papReportEvents);
}

TEST(RunnerEdges, MetricsRegistryMatchesResultDiagnostics)
{
    Rng rng(84);
    const Nfa nfa = compileRuleset(
        {{"abc.*de", 1}, {"fgh", 2}, {"aab", 3}}, "m");
    const InputTrace input =
        randomTextTrace(rng, 16384, "abcdefgh ");
    obs::metrics().clear();
    const PapResult r = runPap(nfa, input, tinyBoard(8));

    obs::MetricsRegistry &m = obs::metrics();
    EXPECT_EQ(m.counter("runner.runs"), 1u);
    EXPECT_EQ(m.counter("runner.segments"), r.segments.size());
    EXPECT_EQ(m.counter("runner.report_events.pap"),
              r.papReportEvents);
    EXPECT_EQ(m.counter("runner.report_events.sequential"),
              r.seqReportEvents);
    EXPECT_EQ(m.counter("runner.context_switches"),
              r.contextSwitches);

    // Per-segment histograms sample each segment exactly once, and the
    // flow counters sum what the diagnostics hold.
    std::uint64_t flows = 0, deactivated = 0, converged = 0,
                  ran_to_end = 0, entries = 0;
    for (const auto &d : r.segments) {
        flows += d.flows;
        deactivated += d.deactivated;
        converged += d.converged;
        ran_to_end += d.ranToEnd;
        entries += d.entries;
    }
    const obs::HistogramSnapshot seg_flows =
        m.histogram("runner.segment.flows");
    EXPECT_EQ(seg_flows.count, r.segments.size());
    EXPECT_DOUBLE_EQ(seg_flows.sum, static_cast<double>(flows));
    EXPECT_EQ(m.counter("runner.flows.planned"), flows);
    EXPECT_EQ(m.counter("runner.flows.deactivated"), deactivated);
    EXPECT_EQ(m.counter("runner.flows.converged"), converged);
    EXPECT_EQ(m.counter("runner.flows.ran_to_end"), ran_to_end);
    const obs::HistogramSnapshot seg_entries =
        m.histogram("runner.segment.entries");
    EXPECT_EQ(seg_entries.count, r.segments.size());
    EXPECT_DOUBLE_EQ(seg_entries.sum, static_cast<double>(entries));
    EXPECT_EQ(m.histogram("runner.segment.length").count,
              r.segments.size());
    EXPECT_EQ(m.histogram("runner.segment.tdone_cycles").count,
              r.segments.size());
    EXPECT_EQ(m.histogram("runner.segment.tresolve_cycles").count,
              r.segments.size());

    EXPECT_DOUBLE_EQ(m.gauge("runner.speedup"), r.speedup);
    EXPECT_DOUBLE_EQ(m.gauge("runner.pap_cycles"),
                     static_cast<double>(r.papCycles));
    EXPECT_DOUBLE_EQ(m.gauge("runner.baseline_cycles"),
                     static_cast<double>(r.baselineCycles));
    obs::metrics().clear();
}

TEST(RunnerEdges, BoundaryProfileReported)
{
    const Nfa nfa = compileRuleset({{"abc", 1}}, "m");
    // 'z' never appears in a label: range 0; make it frequent.
    std::string text;
    for (int i = 0; i < 8000; ++i)
        text += (i % 5 == 4) ? 'z' : "abc"[i % 3];
    const InputTrace input = InputTrace::fromString(text);
    const PapResult r = runPap(nfa, input, tinyBoard(8));
    // Both 'z' (absent from all labels) and 'c' (the final state has
    // no successors) have range 0; frequency breaks the tie.
    EXPECT_TRUE(r.boundarySymbol == 'z' || r.boundarySymbol == 'c');
    EXPECT_EQ(r.boundaryRangeSize, 0u);
    EXPECT_TRUE(r.verified);
}

TEST(RunnerEdges, ReportCostAffectsBaseline)
{
    const Nfa nfa = compileRuleset({{"a", 1}}, "m");
    const InputTrace input =
        InputTrace::fromString(std::string(5000, 'a'));
    PapOptions cheap, pricey;
    cheap.reportCostCyclesPerEvent = 0.0;
    pricey.reportCostCyclesPerEvent = 2.0;
    const auto seq_cheap = runSequential(nfa, input, cheap);
    const auto seq_pricey = runSequential(nfa, input, pricey);
    EXPECT_EQ(seq_cheap.cycles, 5000u);
    EXPECT_EQ(seq_pricey.cycles, 5000u + 10000u);
    EXPECT_EQ(seq_cheap.reports.size(), 5000u);
}

TEST(RunnerEdges, MaxFlowsLimitDegradesToSequential)
{
    // Limit of 1 flow per segment: a two-star single-component rule
    // needs 2. Under the default policy the run degrades to the
    // golden sequential result instead of dying.
    const Nfa nfa = compileRuleset({{"ab.*cd.*ef", 1}}, "m");
    Rng rng(83);
    const InputTrace input = randomTextTrace(rng, 8192, "abcdef");
    PapOptions opt;
    opt.maxFlowsPerSegment = 1;
    const PapResult r = runPap(nfa, input, tinyBoard(4), opt);
    EXPECT_TRUE(r.status.ok());
    EXPECT_TRUE(r.degraded);
    EXPECT_TRUE(r.verified);
    EXPECT_DOUBLE_EQ(r.speedup, 1.0);
    const SequentialResult seq = runSequential(nfa, input, opt);
    EXPECT_EQ(r.reports, seq.reports);
}

TEST(RunnerEdges, MaxFlowsLimitFailsWhenAskedTo)
{
    const Nfa nfa = compileRuleset({{"ab.*cd.*ef", 1}}, "m");
    Rng rng(83);
    const InputTrace input = randomTextTrace(rng, 8192, "abcdef");
    PapOptions opt;
    opt.maxFlowsPerSegment = 1;
    opt.overflowPolicy = OverflowPolicy::Fail;
    const PapResult r = runPap(nfa, input, tinyBoard(4), opt);
    EXPECT_FALSE(r.status.ok());
    EXPECT_EQ(r.status.code(), ErrorCode::CapacityExceeded);
    EXPECT_FALSE(r.verified);
    EXPECT_TRUE(r.reports.empty());
}

} // namespace
} // namespace pap
