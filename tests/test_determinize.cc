/**
 * @file
 * Subset-construction tests: exact DFA state counts on classic
 * examples (including the exponential (a|b)*a(a|b)^{n-1} family) and
 * the cap behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "engine/determinize.h"
#include "nfa/glushkov.h"

namespace pap {
namespace {

Nfa
machine(const std::string &pattern, bool anchored)
{
    Nfa nfa;
    RegexPtr ast = expandRepeats(parseRegex(pattern));
    compileRegexInto(nfa, *ast, 1, anchored);
    nfa.finalize();
    return nfa;
}

TEST(Determinize, SingleAnchoredWordIsAChainPlusDeadState)
{
    // Anchored "abc" over its own alphabet: configs {a}, {b}, {c},
    // {}, ... exactly chain + dead.
    const Nfa nfa = machine("abc", /*anchored=*/true);
    const DeterminizeResult r = subsetConstruction(nfa, 1000);
    EXPECT_FALSE(r.capped);
    EXPECT_EQ(r.dfaStates, 4u); // {s0},{s1},{s2},{} (post-accept = {})
    EXPECT_EQ(r.nfaStates, 3u);
}

TEST(Determinize, ClassicExponentialFamily)
{
    // (a|b)*a(a|b)^{n-1} must remember the last n-1 symbols:
    // at least 2^(n-1) DFA states.
    for (const int n : {3, 5, 8}) {
        std::string pattern = "(a|b)*a";
        for (int i = 1; i < n; ++i)
            pattern += "(a|b)";
        const Nfa nfa = machine(pattern, /*anchored=*/true);
        const DeterminizeResult r = subsetConstruction(nfa, 1 << 14);
        EXPECT_FALSE(r.capped) << "n=" << n;
        EXPECT_GE(r.dfaStates, (1ull << (n - 1))) << "n=" << n;
        // The NFA itself is linear in n.
        EXPECT_LE(r.nfaStates, static_cast<std::uint64_t>(2 * n + 2));
    }
}

TEST(Determinize, CapStopsExploration)
{
    std::string pattern = "(a|b)*a";
    for (int i = 1; i < 16; ++i)
        pattern += "(a|b)";
    const Nfa nfa = machine(pattern, true);
    const DeterminizeResult r = subsetConstruction(nfa, 500);
    EXPECT_TRUE(r.capped);
    EXPECT_EQ(r.dfaStates, 500u);
}

TEST(Determinize, UnanchoredMatcherStaysSmallOnTinyRuleset)
{
    // Unanchored single word: the classic KMP-style automaton, at
    // most |pattern|+1 live configurations over its alphabet.
    const Nfa nfa = machine("aab", /*anchored=*/false);
    const DeterminizeResult r =
        subsetConstruction(nfa, 1000);
    EXPECT_FALSE(r.capped);
    EXPECT_LE(r.dfaStates, 4u);
}

TEST(Determinize, ExplicitAlphabetRestrictsClosure)
{
    const Nfa nfa = machine("ab", false);
    const DeterminizeResult r =
        subsetConstruction(nfa, 1000, {Symbol('a')});
    // Only 'a' transitions: {s0 implicit}, {s1}, and no 'b' step.
    EXPECT_LE(r.dfaStates, 2u);
    EXPECT_FALSE(r.capped);
}

} // namespace
} // namespace pap
