/**
 * @file
 * Common-prefix merging tests: trie-style compression of shared
 * prefixes, idempotence, and (the critical property) preservation of
 * the matched language, verified differentially with the reference
 * engine on random rulesets.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/reference_engine.h"
#include "nfa/glushkov.h"
#include "nfa/prefix_merge.h"
#include "workload_helpers.h"

namespace pap {
namespace {

TEST(PrefixMerge, SharedPrefixesCollapse)
{
    // "abcd" and "abce" share 3 states after merging: a, b, c.
    const Nfa nfa =
        compileRuleset({{"abcd", 1}, {"abce", 2}}, "two");
    PrefixMergeStats stats;
    const Nfa merged = commonPrefixMerge(nfa, &stats);
    EXPECT_EQ(stats.statesBefore, 8u);
    EXPECT_EQ(stats.statesAfter, 5u);
    EXPECT_GE(stats.iterations, 1u);
}

TEST(PrefixMerge, DistinctReportCodesDoNotMerge)
{
    // Identical patterns with different report codes must keep their
    // reporting states apart (prefix shares, tails differ).
    const Nfa nfa = compileRuleset({{"ab", 1}, {"ab", 2}}, "same");
    const Nfa merged = commonPrefixMerge(nfa);
    EXPECT_EQ(merged.size(), 3u); // shared 'a', two 'b' reporters
    EXPECT_EQ(merged.reportingStates().size(), 2u);
}

TEST(PrefixMerge, IdenticalRulesMergeCompletely)
{
    const Nfa nfa = compileRuleset({{"abc", 7}, {"abc", 7}}, "dup");
    const Nfa merged = commonPrefixMerge(nfa);
    EXPECT_EQ(merged.size(), 3u);
}

TEST(PrefixMerge, Idempotent)
{
    Rng rng(4);
    const Nfa nfa = randomNfa(rng, 6);
    const Nfa once = commonPrefixMerge(nfa);
    PrefixMergeStats stats;
    const Nfa twice = commonPrefixMerge(once, &stats);
    EXPECT_EQ(stats.statesBefore, stats.statesAfter);
    EXPECT_EQ(stats.iterations, 0u);
}

TEST(PrefixMerge, AnchoredAndUnanchoredStartsStaySeparate)
{
    const Nfa nfa = compileRuleset(
        {{"ab", 1, true}, {"ab", 1, false}}, "mixed");
    const Nfa merged = commonPrefixMerge(nfa);
    // Different start types on the heads prevent the merge.
    EXPECT_EQ(merged.size(), 4u);
}

TEST(PrefixMerge, LanguagePreservedOnRandomRulesets)
{
    Rng rng(55);
    for (int trial = 0; trial < 25; ++trial) {
        const Nfa nfa = randomNfa(rng, 6);
        const Nfa merged = commonPrefixMerge(nfa);
        EXPECT_LE(merged.size(), nfa.size());
        const InputTrace text =
            randomTextTrace(rng, 300, "abcdefgh\n ");
        const ReferenceResult a = referenceRun(nfa, text.symbols());
        const ReferenceResult b =
            referenceRun(merged, text.symbols());
        // Compare (offset, code) multisets; state ids changed.
        auto strip = [](const std::vector<ReportEvent> &events) {
            std::vector<std::pair<std::uint64_t, ReportCode>> out;
            for (const auto &e : events)
                out.emplace_back(e.offset, e.code);
            std::sort(out.begin(), out.end());
            out.erase(std::unique(out.begin(), out.end()), out.end());
            return out;
        };
        ASSERT_EQ(strip(a.reports), strip(b.reports))
            << "trial " << trial;
    }
}

} // namespace
} // namespace pap
