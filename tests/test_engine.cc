/**
 * @file
 * Execution engine tests: the fast sparse engine against the
 * reference semantics, enumeration-flow mode (starts disabled), the
 * union-decomposability property that justifies flow merging, shared
 * scratch correctness, snapshots and hashes, and counters.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "engine/functional_engine.h"
#include "engine/reference_engine.h"
#include "nfa/glushkov.h"
#include "workload_helpers.h"

namespace pap {
namespace {

std::vector<ReportEvent>
normalized(std::vector<ReportEvent> events)
{
    sortAndDedupReports(events);
    return events;
}

TEST(Engine, MatchesReferenceOnRandomMachines)
{
    Rng rng(21);
    for (int trial = 0; trial < 25; ++trial) {
        const Nfa nfa = randomNfa(rng, 6);
        const CompiledNfa cnfa(nfa);
        const InputTrace text =
            randomTextTrace(rng, 500, "abcdefgh\n ");

        FunctionalEngine engine(cnfa, /*starts=*/true);
        engine.reset(cnfa.initialActive(), 0);
        engine.run(text.begin(), text.size());

        const ReferenceResult ref =
            referenceRun(nfa, text.symbols(), /*record_sets=*/true);
        ASSERT_EQ(normalized(engine.takeReports()), ref.reports)
            << "trial " << trial;

        // Final snapshots agree modulo implicitly enabled AllInput
        // starts (the fast engine keeps them out of the active list).
        std::vector<StateId> expect;
        for (const StateId q : ref.enabledAfter.back())
            if (nfa[q].start != StartType::AllInput)
                expect.push_back(q);
        EXPECT_EQ(engine.snapshot(), expect);
    }
}

TEST(Engine, EnumerationModeHasNoSpontaneousActivity)
{
    const Nfa nfa = compileRuleset({{"abc", 1}}, "m");
    const CompiledNfa cnfa(nfa);
    FunctionalEngine engine(cnfa, /*starts=*/false);
    engine.reset({}, 0);
    const InputTrace text = InputTrace::fromString("abcabc");
    engine.run(text.begin(), text.size());
    EXPECT_TRUE(engine.dead());
    EXPECT_TRUE(engine.reports().empty());
}

TEST(Engine, EnumerationModeTracksSeededActivity)
{
    const Nfa nfa = compileRuleset({{"abc", 1}}, "m");
    const CompiledNfa cnfa(nfa);
    // Seed the 'b' state (id 1): it matches "bc" and reports at 'c'.
    FunctionalEngine engine(cnfa, /*starts=*/false);
    engine.reset({1}, 100);
    const InputTrace text = InputTrace::fromString("bc");
    engine.run(text.begin(), text.size());
    const auto reports = engine.reports();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].offset, 101u);
    EXPECT_EQ(reports[0].code, 1u);
    EXPECT_TRUE(engine.dead()); // nothing after the final state
}

TEST(Engine, UnionDecomposabilityProperty)
{
    // reach(A ∪ B) == reach(A) ∪ reach(B): the foundation of flow
    // merging (Section 3.3.1).
    Rng rng(22);
    for (int trial = 0; trial < 20; ++trial) {
        const Nfa nfa = randomNfa(rng, 6);
        const CompiledNfa cnfa(nfa);
        const InputTrace text =
            randomTextTrace(rng, 120, "abcdefgh ");

        std::vector<StateId> seed_a, seed_b, seed_union;
        for (StateId q = 0; q < nfa.size(); ++q) {
            const bool in_a = rng.nextBool(0.2);
            const bool in_b = rng.nextBool(0.2);
            if (in_a)
                seed_a.push_back(q);
            if (in_b)
                seed_b.push_back(q);
            if (in_a || in_b)
                seed_union.push_back(q);
        }
        auto run = [&](const std::vector<StateId> &seed) {
            FunctionalEngine e(cnfa, /*starts=*/false);
            e.reset(seed, 0);
            e.run(text.begin(), text.size());
            return e.snapshot();
        };
        const auto ra = run(seed_a);
        const auto rb = run(seed_b);
        const auto ru = run(seed_union);
        std::set<StateId> merged(ra.begin(), ra.end());
        merged.insert(rb.begin(), rb.end());
        EXPECT_EQ(std::vector<StateId>(merged.begin(), merged.end()),
                  ru);
    }
}

TEST(Engine, SharedScratchGivesSameResults)
{
    Rng rng(23);
    const Nfa nfa = randomNfa(rng, 5);
    const CompiledNfa cnfa(nfa);
    const InputTrace text = randomTextTrace(rng, 300, "abcdefgh ");

    EngineScratch scratch(cnfa.size());
    FunctionalEngine shared1(cnfa, true, &scratch);
    FunctionalEngine shared2(cnfa, true, &scratch);
    FunctionalEngine owned(cnfa, true);
    shared1.reset(cnfa.initialActive(), 0);
    shared2.reset(cnfa.initialActive(), 0);
    owned.reset(cnfa.initialActive(), 0);
    // Interleave the shared-scratch engines symbol by symbol.
    for (std::size_t i = 0; i < text.size(); ++i) {
        shared1.step(text[i]);
        shared2.step(text[i]);
        owned.step(text[i]);
    }
    EXPECT_EQ(shared1.snapshot(), owned.snapshot());
    EXPECT_EQ(shared2.snapshot(), owned.snapshot());
    EXPECT_EQ(shared1.stateHash(), owned.stateHash());
}

TEST(Engine, HashIsOrderIndependentAndSnapshotSorted)
{
    const Nfa nfa = compileRuleset({{"ab", 1}, {"cb", 2}}, "m");
    const CompiledNfa cnfa(nfa);
    FunctionalEngine e1(cnfa, false), e2(cnfa, false);
    e1.reset({1, 3}, 0);
    e2.reset({3, 1}, 0);
    EXPECT_EQ(e1.stateHash(), e2.stateHash());
    const auto snap1 = e1.snapshot();
    EXPECT_EQ(snap1, e2.snapshot());
    EXPECT_TRUE(std::is_sorted(snap1.begin(), snap1.end()));
}

TEST(Engine, CountersTrackWork)
{
    const Nfa nfa = compileRuleset({{"aa", 1}}, "m");
    const CompiledNfa cnfa(nfa);
    FunctionalEngine engine(cnfa, true);
    engine.reset(cnfa.initialActive(), 0);
    const InputTrace text = InputTrace::fromString("aaa");
    engine.run(text.begin(), text.size());
    EXPECT_EQ(engine.counters().symbols, 3u);
    // start matches at offsets 0,1,2 plus second-state matches at 1,2.
    EXPECT_EQ(engine.counters().matches, 5u);
    EXPECT_EQ(engine.reports().size(), 2u);
}

TEST(Engine, OffsetBaseAppliesToReports)
{
    const Nfa nfa = compileRuleset({{"x", 9}}, "m");
    const CompiledNfa cnfa(nfa);
    FunctionalEngine engine(cnfa, true);
    engine.reset(cnfa.initialActive(), 1000);
    const InputTrace text = InputTrace::fromString("x");
    engine.run(text.begin(), text.size());
    ASSERT_EQ(engine.reports().size(), 1u);
    EXPECT_EQ(engine.reports()[0].offset, 1000u);
    EXPECT_EQ(engine.cursor(), 1001u);
}

TEST(Engine, CompiledNfaExposesStructure)
{
    const Nfa nfa =
        compileRuleset({{"ab", 3, /*anchored=*/true}}, "m");
    const CompiledNfa cnfa(nfa);
    EXPECT_EQ(cnfa.size(), 2u);
    EXPECT_EQ(cnfa.initialActive().size(), 1u); // StartOfData head
    EXPECT_FALSE(cnfa.isAllInputStart(0));
    EXPECT_TRUE(cnfa.reporting(1));
    EXPECT_EQ(cnfa.reportCode(1), 3u);
    const auto [begin, end] = cnfa.successors(0);
    EXPECT_EQ(end - begin, 1);
    EXPECT_EQ(*begin, 1u);
}

} // namespace
} // namespace pap
