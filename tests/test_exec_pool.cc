/**
 * @file
 * Unit tests of the hardened-execution primitives: WorkerPool,
 * CancellationToken, Watchdog, the runHardened retry/deadline driver,
 * and the checkpoint file format (roundtrip, corruption, identity).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "pap/exec/cancellation.h"
#include "pap/exec/checkpoint.h"
#include "pap/exec/driver.h"
#include "pap/exec/pipeline.h"
#include "pap/exec/watchdog.h"
#include "pap/exec/worker_pool.h"
#include "pap/fault_injector.h"

namespace pap {
namespace exec {
namespace {

// --- WorkerPool ------------------------------------------------------

TEST(WorkerPool, ResolvesThreadRequests)
{
    EXPECT_GE(WorkerPool::resolveThreads(0), 1u);
    EXPECT_EQ(WorkerPool::resolveThreads(1), 1u);
    EXPECT_EQ(WorkerPool::resolveThreads(8), 8u);
}

TEST(WorkerPool, RunsEveryTaskExactlyOnce)
{
    for (const std::uint32_t threads : {1u, 2u, 4u}) {
        WorkerPool pool(threads);
        EXPECT_EQ(pool.threadCount(), threads);
        std::vector<std::atomic<int>> hits(64);
        for (auto &h : hits)
            h.store(0);
        for (std::size_t i = 0; i < hits.size(); ++i)
            pool.submit([&hits, i] { hits[i].fetch_add(1); });
        pool.drain();
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(WorkerPool, DrainIsReusable)
{
    WorkerPool pool(2);
    std::atomic<int> n{0};
    pool.submit([&n] { n.fetch_add(1); });
    pool.drain();
    EXPECT_EQ(n.load(), 1);
    pool.submit([&n] { n.fetch_add(1); });
    pool.submit([&n] { n.fetch_add(1); });
    pool.drain();
    EXPECT_EQ(n.load(), 3);
}

TEST(WorkerPool, SubmitAfterStopIsRejected)
{
    WorkerPool pool(2);
    std::atomic<int> n{0};
    EXPECT_TRUE(pool.submit([&n] { n.fetch_add(1); }));
    pool.stop();
    // The contract: a submit that races or follows stop() returns
    // false instead of silently dropping the task (or aborting).
    EXPECT_FALSE(pool.submit([&n] { n.fetch_add(1); }));
    EXPECT_FALSE(pool.submit([&n] { n.fetch_add(1); }));
}

TEST(WorkerPool, DrainWaitsForRunningAndQueuedTasks)
{
    WorkerPool pool(1);
    std::atomic<int> done{0};
    CancellationToken release;
    // First task blocks the single worker; the second is queued
    // behind it. drain() must wait for BOTH (queued + running), not
    // just the queue to empty.
    pool.submit([&] {
        release.waitCancelledFor(std::chrono::milliseconds(10000));
        done.fetch_add(1);
    });
    pool.submit([&done] { done.fetch_add(1); });
    EXPECT_EQ(pool.pending(), 2u);
    std::thread releaser([&release] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        release.cancel();
    });
    pool.drain();
    EXPECT_EQ(done.load(), 2);
    EXPECT_EQ(pool.pending(), 0u);
    releaser.join();
}

TEST(WorkerPool, ConcurrentSubmitAndDrainNeverLosesTasks)
{
    // TSan regression for the drain()-vs-submit() contract: external
    // submitters race stop(); every accepted task must have fully run
    // by the time drain() returns, and rejected tasks must not run.
    for (int round = 0; round < 8; ++round) {
        WorkerPool pool(4);
        std::atomic<int> accepted{0};
        std::atomic<int> executed{0};
        std::vector<std::thread> submitters;
        std::atomic<bool> go{false};
        for (int t = 0; t < 4; ++t)
            submitters.emplace_back([&] {
                while (!go.load())
                    std::this_thread::yield();
                for (int i = 0; i < 64; ++i)
                    if (pool.submit(
                            [&executed] { executed.fetch_add(1); }))
                        accepted.fetch_add(1);
            });
        go.store(true);
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        pool.stop();
        for (auto &s : submitters)
            s.join();
        pool.drain();
        EXPECT_EQ(executed.load(), accepted.load());
    }
}

// --- SegmentPipeline -------------------------------------------------

TEST(SegmentPipeline, BarrierModeRunsEverythingBeforeAwait)
{
    SegmentPipeline::Options opt;
    opt.exec.threads = 2;
    opt.overlap = false;
    std::atomic<int> ran{0};
    SegmentPipeline pipe(opt, 8,
                         [&](std::size_t, const CancellationToken &) {
                             ran.fetch_add(1);
                             return Status();
                         });
    // Barrier mode: the constructor is the barrier.
    EXPECT_EQ(ran.load(), 8);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_TRUE(pipe.await(i).status.ok());
    EXPECT_EQ(pipe.composerStalls(), 0u);
}

TEST(SegmentPipeline, OverlapModeBoundsTheAdmissionWindow)
{
    SegmentPipeline::Options opt;
    opt.exec.threads = 4;
    opt.overlap = true;
    opt.window = 2;
    std::atomic<int> started{0};
    CancellationToken release;
    SegmentPipeline pipe(
        opt, 6, [&](std::size_t, const CancellationToken &) {
            started.fetch_add(1);
            release.waitCancelledFor(std::chrono::milliseconds(10000));
            return Status();
        });
    // Only the first window of tasks may start while the composer
    // has not consumed anything (frontier = 0, window = 2).
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_LE(started.load(), 2);
    release.cancel();
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_TRUE(pipe.await(i).status.ok());
    EXPECT_EQ(started.load(), 6);
}

TEST(SegmentPipeline, AwaitReturnsSlotsInAnyOrderRequested)
{
    SegmentPipeline::Options opt;
    opt.exec.threads = 4;
    opt.overlap = true;
    std::vector<int> slot(10, 0);
    SegmentPipeline pipe(opt, slot.size(),
                         [&](std::size_t i, const CancellationToken &) {
                             slot[i] = static_cast<int>(i) + 1;
                             return Status();
                         });
    for (std::size_t i = 0; i < slot.size(); ++i) {
        EXPECT_TRUE(pipe.await(i).status.ok());
        EXPECT_EQ(slot[i], static_cast<int>(i) + 1);
    }
}

TEST(SegmentPipeline, CancelRemainingStopsUnstartedTasks)
{
    SegmentPipeline::Options opt;
    opt.exec.threads = 1;
    opt.overlap = true;
    opt.window = 1;
    CancellationToken release;
    std::atomic<int> ran{0};
    SegmentPipeline pipe(
        opt, 16, [&](std::size_t, const CancellationToken &) {
            ran.fetch_add(1);
            release.waitCancelledFor(std::chrono::milliseconds(10000));
            return Status();
        });
    pipe.cancelRemaining();
    release.cancel();
    // Destructor drains; tasks past the admission window must report
    // Cancelled without having run.
    std::uint32_t cancelled = 0;
    for (std::size_t i = 0; i < 16; ++i) {
        const TaskReport &tr = pipe.await(i);
        if (!tr.status.ok() &&
            tr.status.code() == ErrorCode::Cancelled)
            ++cancelled;
    }
    EXPECT_GE(cancelled, 14u);
    EXPECT_LE(ran.load(), 2);
}

// --- CancellationToken -----------------------------------------------

TEST(Cancellation, StickyAndObservable)
{
    CancellationToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_FALSE(
        token.waitCancelledFor(std::chrono::milliseconds(1)));
    token.cancel();
    token.cancel(); // idempotent
    EXPECT_TRUE(token.cancelled());
    EXPECT_TRUE(
        token.waitCancelledFor(std::chrono::milliseconds(1000)));
}

TEST(Cancellation, WaitWakesOnCrossThreadCancel)
{
    CancellationToken token;
    std::thread canceller([&token] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        token.cancel();
    });
    EXPECT_TRUE(
        token.waitCancelledFor(std::chrono::milliseconds(5000)));
    canceller.join();
}

// --- Watchdog --------------------------------------------------------

TEST(Watchdog, CancelsOverrunningAttempt)
{
    Watchdog dog;
    auto token = std::make_shared<CancellationToken>();
    dog.arm(token, Watchdog::Clock::now() +
                       std::chrono::milliseconds(5));
    EXPECT_TRUE(
        token->waitCancelledFor(std::chrono::milliseconds(5000)));
    EXPECT_EQ(dog.expiries(), 1u);
}

TEST(Watchdog, DisarmedAttemptIsNeverCancelled)
{
    Watchdog dog;
    auto token = std::make_shared<CancellationToken>();
    const Watchdog::Handle h = dog.arm(
        token,
        Watchdog::Clock::now() + std::chrono::milliseconds(50));
    dog.disarm(h);
    dog.disarm(h); // idempotent
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    EXPECT_FALSE(token->cancelled());
    EXPECT_EQ(dog.expiries(), 0u);
}

// --- runHardened -----------------------------------------------------

TEST(RunHardened, ReportsInIndexOrderForAnyThreadCount)
{
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
        HardenedExecOptions opt;
        opt.threads = threads;
        std::vector<std::size_t> slot(16, 0);
        const auto reports = runHardened(
            opt, slot.size(),
            [&](std::size_t i, const CancellationToken &) {
                slot[i] = i + 1;
                return Status();
            });
        ASSERT_EQ(reports.size(), slot.size());
        for (std::size_t i = 0; i < slot.size(); ++i) {
            EXPECT_TRUE(reports[i].status.ok());
            EXPECT_EQ(reports[i].attempts, 1u);
            EXPECT_FALSE(reports[i].retried);
            EXPECT_EQ(slot[i], i + 1);
        }
    }
}

TEST(RunHardened, RetriesTransientFailureWithBackoff)
{
    HardenedExecOptions opt;
    opt.threads = 2;
    opt.maxRetries = 2;
    opt.backoffBaseMs = 1;
    opt.backoffCapMs = 2;
    std::vector<std::atomic<std::uint32_t>> tries(4);
    for (auto &t : tries)
        t.store(0);
    const auto reports = runHardened(
        opt, tries.size(),
        [&](std::size_t i, const CancellationToken &) {
            // Odd tasks fail on their first attempt only.
            if (tries[i].fetch_add(1) == 0 && (i % 2) == 1)
                return Status::error(ErrorCode::HardwareFault,
                                     "transient");
            return Status();
        });
    for (std::size_t i = 0; i < reports.size(); ++i) {
        EXPECT_TRUE(reports[i].status.ok()) << "task " << i;
        if (i % 2 == 1) {
            EXPECT_TRUE(reports[i].retried);
            EXPECT_TRUE(reports[i].crashed);
            EXPECT_EQ(reports[i].attempts, 2u);
        } else {
            EXPECT_EQ(reports[i].attempts, 1u);
        }
    }
}

TEST(RunHardened, SurfacesTerminalFailureAfterRetriesExhaust)
{
    HardenedExecOptions opt;
    opt.maxRetries = 3;
    opt.backoffBaseMs = 0;
    const auto reports = runHardened(
        opt, 1, [&](std::size_t, const CancellationToken &) {
            return Status::error(ErrorCode::HardwareFault,
                                 "permanent");
        });
    EXPECT_FALSE(reports[0].status.ok());
    EXPECT_EQ(reports[0].status.code(), ErrorCode::HardwareFault);
    EXPECT_EQ(reports[0].attempts, 4u);
    EXPECT_TRUE(reports[0].retried);
    EXPECT_TRUE(reports[0].crashed);
}

TEST(RunHardened, WatchdogCancelsStalledTaskThenRetrySucceeds)
{
    HardenedExecOptions opt;
    opt.maxRetries = 1;
    opt.deadlineMs = 10.0;
    opt.backoffBaseMs = 0;
    std::atomic<std::uint32_t> tries{0};
    const auto reports = runHardened(
        opt, 1, [&](std::size_t, const CancellationToken &cancel) {
            if (tries.fetch_add(1) == 0) {
                // Stall: park until the watchdog cancels us.
                EXPECT_TRUE(cancel.waitCancelledFor(
                    std::chrono::milliseconds(10000)));
                return Status::error(ErrorCode::DeadlineExceeded,
                                     "cancelled");
            }
            return Status();
        });
    EXPECT_TRUE(reports[0].status.ok());
    EXPECT_TRUE(reports[0].timedOut);
    EXPECT_TRUE(reports[0].retried);
    EXPECT_EQ(reports[0].attempts, 2u);
}

TEST(RunHardened, CaughtExceptionBecomesHardwareFault)
{
    HardenedExecOptions opt;
    opt.maxRetries = 0;
    const auto reports = runHardened(
        opt, 1,
        [&](std::size_t, const CancellationToken &) -> Status {
            throw std::runtime_error("boom");
        });
    EXPECT_FALSE(reports[0].status.ok());
    EXPECT_EQ(reports[0].status.code(), ErrorCode::HardwareFault);
    EXPECT_TRUE(reports[0].crashed);
}

TEST(RunHardened, InjectedStallRecoversOnRetry)
{
    auto made = FaultInjector::fromSpec("stall-worker:1", 11);
    ASSERT_TRUE(made.ok());
    FaultInjector fi = made.value();
    HardenedExecOptions opt;
    opt.threads = 2;
    opt.maxRetries = 2;
    opt.deadlineMs = 10.0;
    opt.backoffBaseMs = 0;
    opt.injector = &fi;
    const auto reports = runHardened(
        opt, 6,
        [&](std::size_t, const CancellationToken &) {
            return Status();
        });
    std::uint32_t stalled = 0;
    for (const auto &r : reports) {
        EXPECT_TRUE(r.status.ok());
        if (r.faultsInjected > 0) {
            ++stalled;
            EXPECT_TRUE(r.timedOut);
            EXPECT_TRUE(r.retried);
        }
    }
    // With budget 1 and rate 1, every task stalls exactly on its
    // first attempt and recovers on the retry.
    EXPECT_EQ(stalled, 6u);
    EXPECT_EQ(fi.injected(), 6u);
    EXPECT_EQ(fi.detected(), 6u);
    EXPECT_EQ(fi.recovered(), 6u);
}

TEST(RunHardened, InjectedCrashBeyondRetriesIsTerminal)
{
    // Budget 5 faults every attempt (maxRetries+1 = 3 < 5), so the
    // task exhausts its retries and surfaces the crash.
    auto made = FaultInjector::fromSpec("crash-worker:5", 11);
    ASSERT_TRUE(made.ok());
    FaultInjector fi = made.value();
    HardenedExecOptions opt;
    opt.maxRetries = 2;
    opt.backoffBaseMs = 0;
    opt.injector = &fi;
    const auto reports = runHardened(
        opt, 2,
        [&](std::size_t, const CancellationToken &) {
            return Status();
        });
    for (const auto &r : reports) {
        EXPECT_FALSE(r.status.ok());
        EXPECT_EQ(r.status.code(), ErrorCode::HardwareFault);
        EXPECT_TRUE(r.crashed);
        EXPECT_EQ(r.attempts, 3u);
        EXPECT_EQ(r.faultsInjected, 3u);
    }
    EXPECT_EQ(fi.recovered(), 0u);
    EXPECT_EQ(fi.detected(), 6u);
}

TEST(RunHardened, WorkerFaultSetIsThreadCountInvariant)
{
    std::vector<std::vector<std::uint32_t>> per_thread_faults;
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
        auto made =
            FaultInjector::fromSpec("crash-worker:1:0.5", 99);
        ASSERT_TRUE(made.ok());
        FaultInjector fi = made.value();
        HardenedExecOptions opt;
        opt.threads = threads;
        opt.maxRetries = 1;
        opt.backoffBaseMs = 0;
        opt.injector = &fi;
        const auto reports = runHardened(
            opt, 32,
            [&](std::size_t, const CancellationToken &) {
                return Status();
            });
        std::vector<std::uint32_t> faults;
        for (const auto &r : reports)
            faults.push_back(r.faultsInjected);
        per_thread_faults.push_back(std::move(faults));
    }
    EXPECT_EQ(per_thread_faults[0], per_thread_faults[1]);
    EXPECT_EQ(per_thread_faults[0], per_thread_faults[2]);
}

// --- Checkpoint ------------------------------------------------------

CheckpointFrontier
sampleFrontier()
{
    CheckpointFrontier f;
    f.identity = 0xfeedbeefcafe1234ull;
    f.nextSegment = 2;
    f.finalActive = {3, 7, 42};
    f.reports = {{100, 5, 1}, {2040, 6, 2}};
    f.papEntries = 999;
    f.flowTransitions = 17;
    f.flowSymbolCycles = 123456;
    f.segmentsRetried = 1;
    f.segmentsRecovered = 1;
    f.rngState = {1, 2, 3, 4};
    for (std::uint32_t j = 0; j < 2; ++j) {
        SegmentCheckpoint cp;
        cp.timing.segLen = 8192;
        cp.timing.totalEntries = 11 + j;
        cp.timing.aliveEnumFlowsAtEnd = j;
        cp.timing.hasEnumFlows = j > 0;
        cp.timing.numBatches = 1 + j;
        cp.timing.batchReloadCycles = 5 * j;
        cp.timing.flows.push_back(
            {FlowKind::Golden, 8192, true, 0});
        cp.timing.flows.push_back(
            {FlowKind::Enum, 4096, false, j});
        cp.deactivated = 2;
        cp.converged = 1;
        cp.ranToEnd = 3;
        cp.truePaths = 1;
        cp.recovered = j;
        f.segments.push_back(cp);
    }
    return f;
}

void
expectFrontierEq(const CheckpointFrontier &a,
                 const CheckpointFrontier &b)
{
    EXPECT_EQ(a.identity, b.identity);
    EXPECT_EQ(a.nextSegment, b.nextSegment);
    EXPECT_EQ(a.finalActive, b.finalActive);
    ASSERT_EQ(a.reports.size(), b.reports.size());
    for (std::size_t i = 0; i < a.reports.size(); ++i) {
        EXPECT_EQ(a.reports[i].offset, b.reports[i].offset);
        EXPECT_EQ(a.reports[i].state, b.reports[i].state);
        EXPECT_EQ(a.reports[i].code, b.reports[i].code);
    }
    EXPECT_EQ(a.papEntries, b.papEntries);
    EXPECT_EQ(a.flowTransitions, b.flowTransitions);
    EXPECT_EQ(a.flowSymbolCycles, b.flowSymbolCycles);
    EXPECT_EQ(a.segmentsRetried, b.segmentsRetried);
    EXPECT_EQ(a.segmentsRecovered, b.segmentsRecovered);
    EXPECT_EQ(a.rngState, b.rngState);
    ASSERT_EQ(a.segments.size(), b.segments.size());
    for (std::size_t j = 0; j < a.segments.size(); ++j) {
        const auto &x = a.segments[j];
        const auto &y = b.segments[j];
        EXPECT_EQ(x.timing.segLen, y.timing.segLen);
        EXPECT_EQ(x.timing.totalEntries, y.timing.totalEntries);
        EXPECT_EQ(x.timing.aliveEnumFlowsAtEnd,
                  y.timing.aliveEnumFlowsAtEnd);
        EXPECT_EQ(x.timing.hasEnumFlows, y.timing.hasEnumFlows);
        EXPECT_EQ(x.timing.numBatches, y.timing.numBatches);
        EXPECT_EQ(x.timing.batchReloadCycles,
                  y.timing.batchReloadCycles);
        ASSERT_EQ(x.timing.flows.size(), y.timing.flows.size());
        for (std::size_t k = 0; k < x.timing.flows.size(); ++k) {
            EXPECT_EQ(x.timing.flows[k].kind, y.timing.flows[k].kind);
            EXPECT_EQ(x.timing.flows[k].symbolsProcessed,
                      y.timing.flows[k].symbolsProcessed);
            EXPECT_EQ(x.timing.flows[k].isTrue,
                      y.timing.flows[k].isTrue);
            EXPECT_EQ(x.timing.flows[k].batch,
                      y.timing.flows[k].batch);
        }
        EXPECT_EQ(x.deactivated, y.deactivated);
        EXPECT_EQ(x.converged, y.converged);
        EXPECT_EQ(x.ranToEnd, y.ranToEnd);
        EXPECT_EQ(x.truePaths, y.truePaths);
        EXPECT_EQ(x.recovered, y.recovered);
    }
}

class CheckpointFile : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per test: ctest -j runs fixture tests concurrently,
        // so a shared filename would race between processes.
        path_ = ::testing::TempDir() + "papsim_ckpt_test_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".bin";
        removeCheckpoint(path_);
    }
    void
    TearDown() override
    {
        removeCheckpoint(path_);
    }
    std::string path_;
};

TEST_F(CheckpointFile, RoundTripsEveryField)
{
    const CheckpointFrontier f = sampleFrontier();
    ASSERT_TRUE(saveCheckpoint(path_, f).ok());
    auto loaded = loadCheckpoint(path_);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    expectFrontierEq(f, loaded.value());
}

TEST_F(CheckpointFile, MissingFileIsInvalidInputNotCorrupt)
{
    auto loaded = loadCheckpoint(path_);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), ErrorCode::InvalidInput);
}

TEST_F(CheckpointFile, FlippedByteIsDetectedByCrc)
{
    ASSERT_TRUE(saveCheckpoint(path_, sampleFrontier()).ok());
    {
        std::fstream file(
            path_, std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(file.good());
        file.seekp(40); // somewhere inside the payload
        char byte = 0;
        file.seekg(40);
        file.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x5a);
        file.seekp(40);
        file.write(&byte, 1);
    }
    auto loaded = loadCheckpoint(path_);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), ErrorCode::CheckpointCorrupt);
}

TEST_F(CheckpointFile, TruncatedFileIsCorrupt)
{
    ASSERT_TRUE(saveCheckpoint(path_, sampleFrontier()).ok());
    std::ifstream in(path_, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(bytes.size(), 24u);
    std::ofstream out(path_,
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
    out.close();
    auto loaded = loadCheckpoint(path_);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), ErrorCode::CheckpointCorrupt);
}

TEST_F(CheckpointFile, BadMagicIsCorrupt)
{
    ASSERT_TRUE(saveCheckpoint(path_, sampleFrontier()).ok());
    {
        std::fstream file(
            path_, std::ios::in | std::ios::out | std::ios::binary);
        file.seekp(0);
        file.write("NOTACKPT", 8);
    }
    auto loaded = loadCheckpoint(path_);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), ErrorCode::CheckpointCorrupt);
}

TEST_F(CheckpointFile, SaveIsAtomicOverAnExistingCheckpoint)
{
    CheckpointFrontier f = sampleFrontier();
    ASSERT_TRUE(saveCheckpoint(path_, f).ok());
    f.nextSegment = 3;
    f.segments.push_back(f.segments.back());
    ASSERT_TRUE(saveCheckpoint(path_, f).ok());
    auto loaded = loadCheckpoint(path_);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().nextSegment, 3u);
    EXPECT_EQ(loaded.value().segments.size(), 3u);
    // No stray tmp file left behind.
    std::ifstream tmp(path_ + ".tmp", std::ios::binary);
    EXPECT_FALSE(tmp.good());
}

TEST_F(CheckpointFile, RemoveDeletesTheFile)
{
    ASSERT_TRUE(saveCheckpoint(path_, sampleFrontier()).ok());
    removeCheckpoint(path_);
    std::ifstream probe(path_, std::ios::binary);
    EXPECT_FALSE(probe.good());
    removeCheckpoint(path_); // idempotent
}

} // namespace
} // namespace exec
} // namespace pap
