/**
 * @file
 * ANML import/export tests: round trips (including odd labels and
 * start kinds), hand-written network parsing, the unsupported-element
 * rejection, and language preservation through a save/load cycle.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "engine/reference_engine.h"
#include "nfa/anml.h"
#include "nfa/glushkov.h"
#include "workload_helpers.h"

namespace pap {
namespace {

Nfa
roundTrip(const Nfa &nfa)
{
    std::stringstream ss;
    saveAnml(nfa, ss);
    return loadAnml(ss);
}

TEST(Anml, RoundTripPreservesStructure)
{
    Rng rng(71);
    for (int trial = 0; trial < 10; ++trial) {
        const Nfa nfa = randomNfa(rng, 5);
        const Nfa back = roundTrip(nfa);
        ASSERT_EQ(back.size(), nfa.size());
        EXPECT_EQ(back.edgeCount(), nfa.edgeCount());
        for (StateId q = 0; q < nfa.size(); ++q) {
            EXPECT_EQ(back[q].label, nfa[q].label) << "state " << q;
            EXPECT_EQ(back[q].start, nfa[q].start);
            EXPECT_EQ(back[q].reporting, nfa[q].reporting);
            EXPECT_EQ(back[q].reportCode, nfa[q].reportCode);
            EXPECT_EQ(back[q].succ, nfa[q].succ);
        }
    }
}

TEST(Anml, RoundTripPreservesLanguage)
{
    Rng rng(72);
    const Nfa nfa = randomNfa(rng, 6);
    const Nfa back = roundTrip(nfa);
    const InputTrace text = randomTextTrace(rng, 400, "abcdefgh ");
    EXPECT_EQ(referenceRun(nfa, text.symbols()).reports,
              referenceRun(back, text.symbols()).reports);
}

TEST(Anml, OddLabelsSurvive)
{
    Nfa nfa("odd");
    nfa.addState(CharClass::all(), StartType::AllInput);
    nfa.addState(CharClass());
    nfa.addState(CharClass::single(0));
    nfa.addState(CharClass::single(255), StartType::StartOfData);
    CharClass punct = CharClass::fromString("<>&\"'-[]^\\");
    nfa.addState(punct, StartType::None, true, 42);
    nfa.finalize();
    const Nfa back = roundTrip(nfa);
    ASSERT_EQ(back.size(), nfa.size());
    for (StateId q = 0; q < nfa.size(); ++q)
        EXPECT_EQ(back[q].label, nfa[q].label) << "state " << q;
    EXPECT_EQ(back[4].reportCode, 42u);
}

TEST(Anml, ParsesHandWrittenNetwork)
{
    const char *text = R"(<?xml version="1.0"?>
<!-- two-state matcher -->
<anml-network id="hand">
  <state-transition-element id="start" symbol-set="[a-c]"
                            start="all-input">
    <activate-on-match element="acc"/>
  </state-transition-element>
  <state-transition-element id="acc" symbol-set="[xy]">
    <report-on-match reportcode="9"/>
  </state-transition-element>
</anml-network>)";
    std::stringstream ss(text);
    const Nfa nfa = loadAnml(ss);
    EXPECT_EQ(nfa.name(), "hand");
    ASSERT_EQ(nfa.size(), 2u);
    EXPECT_EQ(nfa[0].start, StartType::AllInput);
    EXPECT_EQ(nfa[0].succ, (std::vector<StateId>{1}));
    EXPECT_TRUE(nfa[1].reporting);
    EXPECT_EQ(nfa[1].reportCode, 9u);

    const InputTrace in = InputTrace::fromString("bx");
    const auto reports = referenceRun(nfa, in.symbols()).reports;
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].offset, 1u);
}

TEST(Anml, RejectsUnsupportedAndMalformed)
{
    auto load = [](const std::string &text) {
        std::stringstream ss(text);
        return loadAnml(ss);
    };
    EXPECT_THROW(load("<bogus/>"), std::runtime_error);
    EXPECT_THROW(load("<anml-network id=\"x\"><counter id=\"c\"/>"
                      "</anml-network>"),
                 std::runtime_error);
    EXPECT_THROW(load("<anml-network id=\"x\">"
                      "<state-transition-element id=\"a\"/>"
                      "</anml-network>"),
                 std::runtime_error); // missing symbol-set
    EXPECT_THROW(
        load("<anml-network id=\"x\">"
             "<state-transition-element id=\"a\" symbol-set=\"[a]\">"
             "<activate-on-match element=\"nope\"/>"
             "</state-transition-element></anml-network>"),
        std::runtime_error); // dangling edge
    EXPECT_THROW(
        load("<anml-network id=\"x\">"
             "<state-transition-element id=\"a\" symbol-set=\"[a]\"/>"
             "<state-transition-element id=\"a\" symbol-set=\"[b]\"/>"
             "</anml-network>"),
        std::runtime_error); // duplicate id
}

TEST(Anml, CompiledRulesetSurvivesExport)
{
    const Nfa nfa = compileRuleset(
        {{"ab(c|d)+", 1}, {"x{2,3}y", 2, true}}, "rules");
    const Nfa back = roundTrip(nfa);
    Rng rng(73);
    const InputTrace text = randomTextTrace(rng, 500, "abcdxy");
    EXPECT_EQ(referenceRun(nfa, text.symbols()).reports,
              referenceRun(back, text.symbols()).reports);
}

} // namespace
} // namespace pap
