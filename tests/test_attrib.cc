/**
 * @file
 * Performance-attribution ledger: unit semantics of AttribLedger
 * (charge, Scope, finalize residual, JSON), and the run-level
 * invariant that the wall buckets of a PAP run sum to its measured
 * wall time — across both pipeline modes, both engine backends,
 * thread counts 1..4, every injected fault kind, device-latency
 * emulation, and checkpointing. Also covers the engine introspection
 * totals PapResult carries alongside the ledger.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "ap/ap_config.h"
#include "common/rng.h"
#include "engine/trace.h"
#include "nfa/glushkov.h"
#include "obs/attrib.h"
#include "obs/metrics.h"
#include "pap/fault_injector.h"
#include "pap/runner.h"
#include "workload_helpers.h"
#include "workloads/benchmarks.h"

namespace pap {
namespace {

// --- Ledger unit semantics -----------------------------------------

TEST(AttribLedger, ChargesAccumulateAndClampBadValues)
{
    obs::AttribLedger ledger;
    ledger.chargeWall("a", 1.5);
    ledger.chargeWall("a", 2.5);
    ledger.chargeAux("x", 3.0);
    // Negative and non-finite charges clamp to zero instead of
    // corrupting the sum-to-wall invariant.
    ledger.chargeWall("a", -7.0);
    ledger.chargeWall("a", std::numeric_limits<double>::quiet_NaN());
    ledger.chargeAux("x", std::numeric_limits<double>::infinity());

    const obs::AttribSnapshot s = ledger.snapshot();
    EXPECT_DOUBLE_EQ(s.bucket("a").ms, 4.0);
    EXPECT_FALSE(s.bucket("a").aux);
    EXPECT_DOUBLE_EQ(s.bucket("x").ms, 3.0);
    EXPECT_TRUE(s.bucket("x").aux);
    EXPECT_DOUBLE_EQ(ledger.wallChargedMs(), 4.0);
}

TEST(AttribLedger, ScopeChargesOnceAndNullLedgerIsNoop)
{
    obs::AttribLedger ledger;
    {
        obs::AttribLedger::Scope s(&ledger, "timed");
        s.stop();
        s.stop(); // idempotent: charges exactly once
    }
    const double once = ledger.snapshot().bucket("timed").ms;
    EXPECT_GE(once, 0.0);

    {
        obs::AttribLedger::Scope aux(&ledger, "aux.timed",
                                     /*aux=*/true);
    }
    EXPECT_TRUE(ledger.snapshot().bucket("aux.timed").aux);

    // Null ledger: every Scope operation is a no-op.
    obs::AttribLedger::Scope null_scope(nullptr, "nowhere");
    null_scope.stop();
}

TEST(AttribLedger, FinalizeChargesResidualToOther)
{
    obs::AttribLedger ledger;
    ledger.chargeWall("work", 2.0);
    ledger.chargeAux("overlap", 100.0); // aux never enters the sum
    ledger.finalize(10.0);

    const obs::AttribSnapshot s = ledger.snapshot();
    EXPECT_DOUBLE_EQ(s.wallMs, 10.0);
    EXPECT_DOUBLE_EQ(s.bucket("other").ms, 8.0);
    EXPECT_DOUBLE_EQ(s.wallChargedMs(), 10.0);
    EXPECT_DOUBLE_EQ(ledger.measuredWallMs(), 10.0);

    // Over-charged ledger (timer noise): the residual clamps at zero
    // rather than going negative.
    obs::AttribLedger over;
    over.chargeWall("work", 12.0);
    over.finalize(10.0);
    EXPECT_DOUBLE_EQ(over.snapshot().bucket("other").ms, 0.0);
}

TEST(AttribLedger, JsonIsWellFormedAndNonFiniteSafe)
{
    obs::AttribSnapshot s;
    s.wallMs = std::numeric_limits<double>::infinity();
    s.buckets.push_back({"ok", 1.25, false});
    s.buckets.push_back(
        {"bad", std::numeric_limits<double>::quiet_NaN(), false});
    s.buckets.push_back({"side", 0.5, true});

    const std::string json = obs::attribToJson(s);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"wall_ms\""), std::string::npos);
    EXPECT_NE(json.find("\"buckets\""), std::string::npos);
    EXPECT_NE(json.find("\"aux\""), std::string::npos);
    EXPECT_NE(json.find("\"ok\": 1.25"), std::string::npos);
    EXPECT_NE(json.find("\"side\": 0.5"), std::string::npos);
    // Non-finite values serialize as 0, never as nan/inf literals
    // (which are not JSON).
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_EQ(json.find("inf"), std::string::npos);
}

// --- The run-level invariant ---------------------------------------

ApConfig
smallBoard(std::uint32_t half_cores)
{
    ApConfig cfg = ApConfig::d480(1);
    cfg.devicesPerRank = half_cores;
    cfg.halfCoresPerDevice = 1;
    return cfg;
}

struct Workload
{
    Nfa nfa;
    InputTrace input;
};

Workload
attribWorkload()
{
    Rng rng(77);
    return Workload{compileRuleset({{"ab.*cd", 1}, {"fgh", 2}}, "m"),
                    randomTextTrace(rng, 16384, "abcdfgh ")};
}

/**
 * The tested invariant: the wall buckets (with the "other" residual)
 * sum to the measured wall time. By construction they match exactly
 * up to fp addition; the 5%-or-0.5ms tolerance only absorbs rounding
 * on very short runs.
 */
void
expectSumsToWall(const PapResult &r, const std::string &what)
{
    const obs::AttribSnapshot &a = r.attrib;
    ASSERT_GT(a.wallMs, 0.0) << what;
    EXPECT_NEAR(a.wallChargedMs(), a.wallMs,
                std::max(0.05 * a.wallMs, 0.5))
        << what;
}

bool
hasBucket(const obs::AttribSnapshot &a, const std::string &name)
{
    return std::any_of(a.buckets.begin(), a.buckets.end(),
                       [&](const obs::AttribBucket &b) {
                           return b.name == name;
                       });
}

TEST(AttribRun, SumsToWallAcrossModesEnginesAndThreads)
{
    const Workload w = attribWorkload();
    const ApConfig cfg = smallBoard(8);
    for (const PipelineMode mode :
         {PipelineMode::Barrier, PipelineMode::Overlap}) {
        for (const EngineKind engine :
             {EngineKind::Sparse, EngineKind::Dense}) {
            for (const std::uint32_t threads : {1u, 2u, 3u, 4u}) {
                PapOptions opt;
                opt.pipeline = mode;
                opt.engine = engine;
                opt.threads = threads;
                const PapResult r =
                    runPap(w.nfa, w.input, cfg, opt);
                ASSERT_TRUE(r.status.ok()) << r.status.toString();
                char what[96];
                std::snprintf(what, sizeof(what),
                              "mode=%d engine=%d threads=%u",
                              static_cast<int>(mode),
                              static_cast<int>(engine), threads);
                expectSumsToWall(r, what);
                // The phase buckets a healthy multi-segment run must
                // charge on its composer thread.
                for (const char *name :
                     {"analyze", "baseline", "partition", "plan",
                      "device.execute", "compose.decode", "verify",
                      "timeline"})
                    EXPECT_TRUE(hasBucket(r.attrib, name))
                        << what << " missing " << name;
                // Worker-side execution is always an aux charge.
                EXPECT_TRUE(
                    r.attrib.bucket("workers.execute").aux);
                EXPECT_GT(r.attrib.bucket("workers.execute").ms, 0.0);
            }
        }
    }
}

TEST(AttribRun, SumsToWallOnTable1Workloads)
{
    const ApConfig cfg = ApConfig::d480(1);
    for (const auto &info : benchmarkRegistry()) {
        const Nfa nfa = buildBenchmark(info.name);
        // Short traces: the invariant under test is structural (the
        // ledger partitions the wall clock), not throughput-shaped.
        const InputTrace input =
            buildBenchmarkTrace(nfa, info.name, 512);
        for (const PipelineMode mode :
             {PipelineMode::Barrier, PipelineMode::Overlap}) {
            for (const EngineKind engine :
                 {EngineKind::Sparse, EngineKind::Dense}) {
                PapOptions opt;
                opt.threads = 2;
                opt.pipeline = mode;
                opt.engine = engine;
                opt.routingMinHalfCores = info.paper.halfCores;
                const PapResult r = runPap(nfa, input, cfg, opt);
                ASSERT_TRUE(r.status.ok())
                    << info.name << ": " << r.status.toString();
                expectSumsToWall(
                    r, info.name + " mode=" +
                           std::to_string(static_cast<int>(mode)) +
                           " engine=" +
                           std::to_string(static_cast<int>(engine)));
            }
        }
    }
}

TEST(AttribRun, EngineCountersAreBackendInvariantWhereContracted)
{
    const Workload w = attribWorkload();
    const ApConfig cfg = smallBoard(8);
    PapOptions opt;
    opt.threads = 2;

    opt.engine = EngineKind::Sparse;
    const PapResult sparse = runPap(w.nfa, w.input, cfg, opt);
    opt.engine = EngineKind::Dense;
    const PapResult dense = runPap(w.nfa, w.input, cfg, opt);
    ASSERT_TRUE(sparse.status.ok());
    ASSERT_TRUE(dense.status.ok());

    // The density histogram derives from the contract-fixed active
    // set, and succRows counts matched states — both must agree
    // between backends even though the datapath-cost counters differ.
    EXPECT_EQ(sparse.engineDensityOctiles, dense.engineDensityOctiles);
    EXPECT_EQ(sparse.engineSuccRows, dense.engineSuccRows);

    // One histogram entry per flow step: the octiles sum to the
    // flow-symbol total.
    std::uint64_t octile_steps = 0;
    for (const std::uint64_t n : sparse.engineDensityOctiles)
        octile_steps += n;
    EXPECT_EQ(octile_steps, sparse.flowSymbolCycles);

    // Datapath cost is backend-specific but always populated.
    EXPECT_GT(sparse.engineMaskWords, 0u);
    EXPECT_GT(dense.engineMaskWords, 0u);
    EXPECT_GT(sparse.engineBytesTouched, 0u);
    EXPECT_GT(dense.engineBytesTouched, 0u);
    EXPECT_GT(sparse.engineBytesPerSymbol, 0.0);
    EXPECT_GT(dense.engineBytesPerSymbol, 0.0);

    // recordRunMetrics folded the same numbers into the registry.
    EXPECT_GT(obs::metrics().gauge("attrib.wall_ms"), 0.0);
    EXPECT_GT(obs::metrics().counter("engine.counters.bytes_touched"),
              0u);
}

TEST(AttribRun, SumsToWallUnderEveryFaultKind)
{
    const Workload w = attribWorkload();
    const ApConfig cfg = smallBoard(8);
    for (const char *kind :
         {"corrupt-sv", "evict-svc", "drop-report", "truncate-report",
          "drop-fiv", "stall-worker", "crash-worker"}) {
        auto made =
            FaultInjector::fromSpec(std::string(kind) + ":3", 7);
        ASSERT_TRUE(made.ok()) << kind;
        FaultInjector injector = std::move(made.value());
        PapOptions opt;
        opt.threads = 2;
        opt.faultInjector = &injector;
        opt.segmentDeadlineMs = 50.0; // bound injected stalls
        const PapResult r = runPap(w.nfa, w.input, cfg, opt);
        ASSERT_TRUE(r.status.ok()) << kind;
        expectSumsToWall(r, kind);
        // A degraded run must show where the damage cost time: retry
        // backoff sleeps on the workers and/or oracle recovery on the
        // composer.
        if (r.segmentsRetried > 0) {
            EXPECT_GT(r.attrib.bucket("workers.retry_backoff").ms,
                      0.0)
                << kind;
        }
        if (r.segmentsRecovered > 0) {
            EXPECT_GT(r.attrib.bucket("compose.recover").ms, 0.0)
                << kind;
        }
    }
}

TEST(AttribRun, EmulationAndOverlapChargeTheirBuckets)
{
    const Workload w = attribWorkload();
    const ApConfig cfg = smallBoard(8);
    PapOptions opt;
    opt.threads = 2;
    opt.emulateDeviceNsPerSymbol = 500.0;

    opt.pipeline = PipelineMode::Barrier;
    const PapResult barrier = runPap(w.nfa, w.input, cfg, opt);
    ASSERT_TRUE(barrier.status.ok());
    expectSumsToWall(barrier, "emu barrier");
    // The modeled host Tcpu is slept out on the composer thread.
    EXPECT_GT(barrier.attrib.bucket("compose.emulation").ms, 0.0);
    // In barrier mode the whole device execution happens inside the
    // pipeline constructor, on the composer's wall clock.
    EXPECT_GT(barrier.attrib.bucket("device.execute").ms, 1.0);

    opt.pipeline = PipelineMode::Overlap;
    const PapResult overlap = runPap(w.nfa, w.input, cfg, opt);
    ASSERT_TRUE(overlap.status.ok());
    expectSumsToWall(overlap, "emu overlap");
    // In overlap mode the composer instead waits in await(): the
    // pipeline.stall bucket absorbs the device time.
    EXPECT_TRUE(hasBucket(overlap.attrib, "pipeline.stall"));
    EXPECT_GT(overlap.attrib.bucket("pipeline.stall").ms +
                  overlap.attrib.bucket("device.execute").ms,
              1.0);
}

TEST(AttribRun, CheckpointingChargesIoBucket)
{
    const Workload w = attribWorkload();
    const ApConfig cfg = smallBoard(8);
    const std::string path =
        testing::TempDir() + "attrib_ckpt.bin";
    PapOptions opt;
    opt.threads = 2;
    opt.checkpointPath = path;
    const PapResult r = runPap(w.nfa, w.input, cfg, opt);
    ASSERT_TRUE(r.status.ok());
    expectSumsToWall(r, "checkpointing");
    EXPECT_TRUE(hasBucket(r.attrib, "checkpoint.io"));
    std::remove(path.c_str());
}

} // namespace
} // namespace pap
