/**
 * @file
 * Speculative parallelization tests: correctness (composed reports
 * equal the sequential run regardless of prediction accuracy),
 * subset property of predictions, accuracy behaviour on memoryless
 * vs. long-lived automata, and the golden cap.
 */

#include <gtest/gtest.h>

#include "ap/ap_config.h"
#include "common/rng.h"
#include "nfa/glushkov.h"
#include "pap/speculative.h"
#include "workload_helpers.h"

namespace pap {
namespace {

ApConfig
tinyBoard(std::uint32_t half_cores)
{
    ApConfig cfg = ApConfig::d480(1);
    cfg.devicesPerRank = half_cores;
    cfg.halfCoresPerDevice = 1;
    return cfg;
}

TEST(Speculative, VerifiesOnRandomAutomata)
{
    Rng rng(404);
    for (int trial = 0; trial < 20; ++trial) {
        const Nfa nfa = randomNfa(rng, 6);
        const InputTrace input =
            randomTextTrace(rng, 2048 + rng.nextBelow(4096),
                            "abcdefgh\n ");
        SpeculationOptions opt;
        opt.warmupWindow =
            16 + static_cast<std::uint32_t>(rng.nextBelow(200));
        const SpeculationResult r = runSpeculative(
            nfa, input,
            tinyBoard(2 + static_cast<std::uint32_t>(rng.nextBelow(7))),
            opt);
        EXPECT_TRUE(r.verified) << "trial " << trial;
        EXPECT_GE(r.accuracy, 0.0);
        EXPECT_LE(r.accuracy, 1.0);
        EXPECT_GE(r.speedup, 1.0);
    }
}

TEST(Speculative, MemorylessPatternsPredictPerfectly)
{
    // Short exact-match patterns carry no state across a warmup
    // window longer than the longest pattern: accuracy 1.0.
    const Nfa nfa =
        compileRuleset({{"abc", 1}, {"bcd", 2}, {"dd", 3}}, "mless");
    Rng rng(5);
    const InputTrace input = randomTextTrace(rng, 1 << 16, "abcd ");
    SpeculationOptions opt;
    opt.warmupWindow = 64;
    const SpeculationResult r =
        runSpeculative(nfa, input, tinyBoard(8), opt);
    EXPECT_TRUE(r.verified);
    EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
    // Perfect speculation approaches ideal up to warmup + upload.
    EXPECT_GT(r.speedup, 0.6 * r.idealSpeedup);
}

TEST(Speculative, LatchedStarStateDefeatsSpeculation)
{
    // Once "begin" latches the .* state, every later segment's true
    // start set contains it, but a bounded warmup window started
    // after the latch can never predict it.
    const Nfa nfa =
        compileRuleset({{"begin.*end", 1}}, "latch");
    std::string text = "begin";
    text += std::string(8000, 'x');
    text += "end";
    const InputTrace input = InputTrace::fromString(text);
    SpeculationOptions opt;
    opt.warmupWindow = 32;
    const SpeculationResult r =
        runSpeculative(nfa, input, tinyBoard(8), opt);
    EXPECT_TRUE(r.verified);
    // Only segment 0 predicts correctly.
    EXPECT_NEAR(r.accuracy, 1.0 / r.numSegments, 1e-9);
    ASSERT_EQ(r.reports.size(), 1u);
    EXPECT_EQ(r.reports[0].offset, text.size() - 1);
}

TEST(Speculative, SingleSegmentFallsBackToSequential)
{
    const Nfa nfa = compileRuleset({{"ab", 1}}, "m");
    const InputTrace input = InputTrace::fromString("abab");
    const SpeculationResult r =
        runSpeculative(nfa, input, tinyBoard(4));
    EXPECT_EQ(r.numSegments, 1u);
    EXPECT_DOUBLE_EQ(r.speedup, 1.0);
    EXPECT_TRUE(r.verified);
}

TEST(Speculative, WiderWindowNeverLowersAccuracy)
{
    Rng rng(17);
    const Nfa nfa = compileRuleset(
        {{"ab(cd)+e", 1}, {"fgh{1,4}i", 2}, {"jkl", 3}}, "m");
    const InputTrace input = randomTextTrace(rng, 16384,
                                             "abcdefghijkl ");
    double prev = -1.0;
    for (const std::uint32_t window : {8u, 64u, 512u}) {
        SpeculationOptions opt;
        opt.warmupWindow = window;
        const SpeculationResult r =
            runSpeculative(nfa, input, tinyBoard(8), opt);
        EXPECT_TRUE(r.verified);
        EXPECT_GE(r.accuracy + 1e-12, prev) << "window " << window;
        prev = r.accuracy;
    }
}

} // namespace
} // namespace pap
