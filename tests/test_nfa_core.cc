/**
 * @file
 * Nfa container tests: building, finalize invariants, append,
 * self-loops, and text serialization round trips.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "nfa/nfa.h"
#include "nfa/nfa_io.h"
#include "workload_helpers.h"

namespace pap {
namespace {

Nfa
tinyMachine()
{
    Nfa nfa("tiny");
    const StateId a =
        nfa.addState(CharClass::single('a'), StartType::AllInput);
    const StateId b = nfa.addState(CharClass::single('b'),
                                   StartType::None, true, 5);
    nfa.addEdge(a, b);
    nfa.addEdge(a, b); // duplicate, removed by finalize
    nfa.addEdge(b, b); // self loop
    nfa.finalize();
    return nfa;
}

TEST(NfaCore, FinalizeDeduplicatesAndSorts)
{
    const Nfa nfa = tinyMachine();
    EXPECT_EQ(nfa.size(), 2u);
    EXPECT_EQ(nfa.edgeCount(), 2u); // a->b once, b->b
    EXPECT_EQ(nfa[0].succ, (std::vector<StateId>{1}));
    EXPECT_TRUE(nfa.hasSelfLoop(1));
    EXPECT_FALSE(nfa.hasSelfLoop(0));
    EXPECT_EQ(nfa.startStates(), (std::vector<StateId>{0}));
    EXPECT_EQ(nfa.reportingStates(), (std::vector<StateId>{1}));
}

TEST(NfaCore, MutationClearsFinalized)
{
    Nfa nfa = tinyMachine();
    EXPECT_TRUE(nfa.finalized());
    nfa.mutableState(0).reporting = true;
    EXPECT_FALSE(nfa.finalized());
    nfa.finalize();
    EXPECT_EQ(nfa.reportingStates().size(), 2u);
}

TEST(NfaCore, AppendOffsetsIds)
{
    Nfa a = tinyMachine();
    const Nfa b = tinyMachine();
    const StateId offset = a.append(b);
    EXPECT_EQ(offset, 2u);
    a.finalize();
    EXPECT_EQ(a.size(), 4u);
    EXPECT_EQ(a[2].succ, (std::vector<StateId>{3}));
    EXPECT_EQ(a.startStates().size(), 2u);
}

TEST(NfaCore, ValidatePassesOnWellFormed)
{
    const Nfa nfa = tinyMachine();
    nfa.validate(); // must not panic
}

TEST(NfaIo, RoundTripTiny)
{
    const Nfa nfa = tinyMachine();
    std::stringstream ss;
    saveNfa(nfa, ss);
    const Nfa back = loadNfa(ss);
    ASSERT_EQ(back.size(), nfa.size());
    EXPECT_EQ(back.name(), "tiny");
    for (StateId q = 0; q < nfa.size(); ++q) {
        EXPECT_EQ(back[q].label, nfa[q].label);
        EXPECT_EQ(back[q].start, nfa[q].start);
        EXPECT_EQ(back[q].reporting, nfa[q].reporting);
        EXPECT_EQ(back[q].reportCode, nfa[q].reportCode);
        EXPECT_EQ(back[q].succ, nfa[q].succ);
    }
}

TEST(NfaIo, RoundTripRandomMachines)
{
    Rng rng(9);
    for (int trial = 0; trial < 10; ++trial) {
        const Nfa nfa = randomNfa(rng, 5);
        std::stringstream ss;
        saveNfa(nfa, ss);
        const Nfa back = loadNfa(ss);
        ASSERT_EQ(back.size(), nfa.size());
        for (StateId q = 0; q < nfa.size(); ++q) {
            ASSERT_EQ(back[q].label, nfa[q].label);
            ASSERT_EQ(back[q].succ, nfa[q].succ);
        }
    }
}

TEST(NfaIo, RejectsMalformedInput)
{
    auto load = [](const std::string &text) {
        std::stringstream ss(text);
        return loadNfa(ss);
    };
    EXPECT_THROW(load("garbage"), std::runtime_error);
    EXPECT_THROW(load("papsim-nfa 1\nnope"), std::runtime_error);
    EXPECT_THROW(load("papsim-nfa 1\nname x\nstates 2\nend\n"),
                 std::runtime_error);
    // Edge to a nonexistent state.
    std::string bad = "papsim-nfa 1\nname x\nstates 1\ns 0 ";
    bad += std::string(64, '0');
    bad += " 0 0 0\ne 0 5\nend\n";
    EXPECT_THROW(load(bad), std::runtime_error);
}

} // namespace
} // namespace pap
