/**
 * @file
 * Tests for the multi-stream flow multiplexer and the Section-5.3
 * energy model, plus the runner's energy/SVC accounting fields.
 */

#include <gtest/gtest.h>

#include "ap/ap_config.h"
#include "ap/energy.h"
#include "common/rng.h"
#include "nfa/glushkov.h"
#include "pap/multistream.h"
#include "pap/runner.h"
#include "workload_helpers.h"

namespace pap {
namespace {

TEST(MultiStream, EachStreamMatchesStandaloneRun)
{
    Rng rng(61);
    const Nfa nfa = randomNfa(rng, 5);
    std::vector<InputTrace> streams;
    for (int i = 0; i < 5; ++i)
        streams.push_back(
            randomTextTrace(rng, 1000 + rng.nextBelow(2000),
                            "abcdefgh "));
    const MultiStreamResult r =
        runMultiStream(nfa, streams, ApConfig::d480(1));
    EXPECT_TRUE(r.verified);
    ASSERT_EQ(r.reports.size(), streams.size());
    ASSERT_EQ(r.streamDone.size(), streams.size());
}

TEST(MultiStream, SingleStreamHasNoSwitchOverhead)
{
    const Nfa nfa = compileRuleset({{"ab", 1}}, "m");
    const std::vector<InputTrace> streams = {
        InputTrace::fromString(std::string(1000, 'a'))};
    const MultiStreamResult r =
        runMultiStream(nfa, streams, ApConfig::d480(1));
    EXPECT_EQ(r.totalCycles, 1000u);
    EXPECT_EQ(r.switchCycles, 0u);
    EXPECT_DOUBLE_EQ(r.overheadRatio, 1.0);
}

TEST(MultiStream, OverheadBoundedBySwitchFraction)
{
    const Nfa nfa = compileRuleset({{"ab", 1}}, "m");
    Rng rng(62);
    std::vector<InputTrace> streams;
    for (int i = 0; i < 8; ++i)
        streams.push_back(randomTextTrace(rng, 5000, "ab"));
    PapOptions opt;
    opt.tdmQuantum = 125;
    const MultiStreamResult r =
        runMultiStream(nfa, streams, ApConfig::d480(1), opt);
    const double bound =
        3.0 / 125.0 + 1e-9; // switch per quantum
    EXPECT_LE(r.overheadRatio, 1.0 + bound);
    EXPECT_GT(r.overheadRatio, 1.0);
}

TEST(MultiStream, RoundRobinFinishesShortStreamsFirst)
{
    const Nfa nfa = compileRuleset({{"ab", 1}}, "m");
    std::vector<InputTrace> streams = {
        InputTrace::fromString(std::string(200, 'a')),
        InputTrace::fromString(std::string(4000, 'a'))};
    const MultiStreamResult r =
        runMultiStream(nfa, streams, ApConfig::d480(1));
    EXPECT_LT(r.streamDone[0], r.streamDone[1]);
    EXPECT_EQ(r.streamDone[1], r.totalCycles);
}

TEST(Energy, BreakdownSumsAndScales)
{
    EnergyActivity a;
    a.cycles = 1000;
    a.blockCycles = 5000;
    a.transitions = 200;
    a.contextSwitches = 10;
    a.stateVectorUploads = 2;
    EnergyParams p;
    const EnergyBreakdown e = energyOf(a, p);
    EXPECT_DOUBLE_EQ(e.staticEnergy, 1000 * p.staticPerCycle);
    EXPECT_DOUBLE_EQ(e.dynamicRowEnergy, 5000 * p.rowActivation);
    EXPECT_DOUBLE_EQ(e.transitionEnergy, 200 * p.transitionWrite);
    EXPECT_DOUBLE_EQ(e.switchEnergy, 10 * p.contextSwitch);
    EXPECT_DOUBLE_EQ(e.uploadEnergy, 2 * p.stateVectorUpload);
    EXPECT_DOUBLE_EQ(e.total(),
                     e.staticEnergy + e.dynamicRowEnergy +
                         e.transitionEnergy + e.switchEnergy +
                         e.uploadEnergy);
}

TEST(Energy, RunnerExposesActivityCounters)
{
    const std::vector<RegexRule> rules = {{"abr.*kad", 1},
                                          {"abra", 2}};
    const Nfa nfa = compileRuleset(rules, "m");
    Rng rng(63);
    const InputTrace input = randomTextTrace(rng, 16384, "abrkd ");
    ApConfig board = ApConfig::d480(1);
    board.devicesPerRank = 4;
    board.halfCoresPerDevice = 1;
    const PapResult r = runPap(nfa, input, board);
    EXPECT_TRUE(r.verified);
    EXPECT_GE(r.flowTransitions, r.seqTransitions);
    EXPECT_GT(r.seqTransitions, 0u);
    EXPECT_NEAR(r.transitionRatio,
                static_cast<double>(r.flowTransitions) /
                    static_cast<double>(r.seqTransitions),
                1e-9);
    // The .* keeps false flows alive: switches and uploads happen.
    EXPECT_GT(r.contextSwitches, 0u);
    EXPECT_GT(r.stateVectorUploads, 0u);
    EXPECT_GT(r.flowSymbolCycles, input.size());
    EXPECT_GT(r.maxFlowsPerSegment, 0u);
    EXPECT_FALSE(r.svcOverflow);
}

TEST(Energy, SvcOverflowFlagged)
{
    // A board with a tiny SVC triggers the overflow diagnostic. Two
    // ".*" states in ONE component force two flows (paths of the same
    // component can never share a flow).
    const Nfa nfa = compileRuleset({{"ab.*cd.*ef", 1}}, "m");
    Rng rng(64);
    const InputTrace input = randomTextTrace(rng, 8192, "abcdefgh");
    ApConfig board = ApConfig::d480(1);
    board.devicesPerRank = 4;
    board.halfCoresPerDevice = 1;
    board.svcEntriesPerDevice = 1;
    const PapResult r = runPap(nfa, input, board);
    EXPECT_TRUE(r.verified);
    EXPECT_TRUE(r.svcOverflow);
}

} // namespace
} // namespace pap
