/**
 * @file
 * State Vector Cache replacement policies and OverflowPolicy::Evict:
 * per-policy eviction order, re-upload classification, pinning, the
 * counter split (load_hits/load_misses, invalidate_misses), the typed
 * non-resident equal/isZero contract (the fault-matrix scenario: an
 * eviction landing between a save and a convergence check must be
 * recoverable, not fatal), capacity-boundary behavior under Evict,
 * cost-aware beating LRU on a skewed-lifetime workload, and byte
 * identity of reports across every overflow policy x replacement
 * policy x thread-count combination.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ap/ap_config.h"
#include "ap/state_vector_cache.h"
#include "ap/svc_policy.h"
#include "nfa/glushkov.h"
#include "pap/runner.h"

namespace pap {
namespace {

// --- Policy units ----------------------------------------------------

TEST(SvcPolicy, ParseNames)
{
    EXPECT_EQ(parseSvcPolicy("lru").value(), SvcPolicyKind::Lru);
    EXPECT_EQ(parseSvcPolicy("fifo").value(), SvcPolicyKind::Fifo);
    EXPECT_EQ(parseSvcPolicy("cost").value(), SvcPolicyKind::CostAware);
    const auto bad = parseSvcPolicy("mru");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::InvalidInput);
    EXPECT_STREQ(svcPolicyName(SvcPolicyKind::CostAware), "cost");
}

TEST(SvcPolicy, LruEvictsLeastRecentlyTouched)
{
    auto p = makeSvcPolicy(SvcPolicyKind::Lru);
    p->admit(0, 0, false);
    p->admit(1, 0, false);
    p->admit(2, 0, false);
    p->touch(0); // order now 1 < 2 < 0
    EXPECT_EQ(p->victim().value(), 1u);
    p->touch(1);
    EXPECT_EQ(p->victim().value(), 2u);
}

TEST(SvcPolicy, FifoIgnoresTouches)
{
    auto p = makeSvcPolicy(SvcPolicyKind::Fifo);
    p->admit(5, 0, false);
    p->admit(6, 0, false);
    p->touch(5);
    p->touch(5);
    EXPECT_EQ(p->victim().value(), 5u); // earliest admitted, still
    p->remove(5);
    EXPECT_EQ(p->victim().value(), 6u);
}

TEST(SvcPolicy, CostAwareEvictsCheapestThenMostRecent)
{
    auto p = makeSvcPolicy(SvcPolicyKind::CostAware);
    p->admit(0, 500, false);
    p->admit(1, 100, false); // cheapest: about to die
    p->admit(2, 900, false);
    EXPECT_EQ(p->victim().value(), 1u);
    p->setCost(1, 2000);
    EXPECT_EQ(p->victim().value(), 0u); // now flow 0 is cheapest

    // Equal costs: the most recently touched entry goes (under the
    // cyclic TDM schedule it is the farthest from its next access).
    auto q = makeSvcPolicy(SvcPolicyKind::CostAware);
    q->admit(0, 100, false);
    q->admit(1, 100, false);
    q->touch(0);
    EXPECT_EQ(q->victim().value(), 0u);
}

TEST(SvcPolicy, VictimIsDeterministic)
{
    // Admission order is a total tie-break for LRU and FIFO (ticks
    // are unique), and cost ties fall back to recency: the choice
    // never depends on hash-map iteration order.
    for (const auto kind : {SvcPolicyKind::Lru, SvcPolicyKind::Fifo}) {
        auto p = makeSvcPolicy(kind);
        p->admit(9, 0, false);
        p->admit(3, 0, false);
        p->admit(7, 0, false);
        EXPECT_EQ(p->victim().value(), 9u);
    }
    auto c = makeSvcPolicy(SvcPolicyKind::CostAware);
    c->admit(9, 50, false);
    c->admit(3, 50, false);
    c->admit(7, 50, false);
    // Equal cost, MRU tie-break: the last admitted (7) was "touched"
    // most recently by its admission.
    EXPECT_EQ(c->victim().value(), 7u);
}

TEST(SvcPolicy, AllPinnedHasNoVictim)
{
    auto p = makeSvcPolicy(SvcPolicyKind::Lru);
    p->admit(0, 0, true);
    p->admit(1, 0, true);
    const auto v = p->victim();
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.status().code(), ErrorCode::CapacityExceeded);
    p->admit(2, 0, false);
    EXPECT_EQ(p->victim().value(), 2u); // the only unpinned entry
}

// --- Cache units -----------------------------------------------------

TEST(SvcEvict, EvictionAndReuploadClassification)
{
    StateVectorCache svc(2, SvcPolicyKind::Lru);
    EXPECT_TRUE(svc.saveEvicting(0, {1}).ok());
    EXPECT_TRUE(svc.saveEvicting(1, {2}).ok());

    // Third admission evicts the LRU victim (flow 0).
    const auto adm = svc.saveEvicting(2, {3}).value();
    EXPECT_TRUE(adm.evicted);
    EXPECT_EQ(adm.victim, 0u);
    EXPECT_FALSE(adm.reupload); // first-ever admission: compulsory
    EXPECT_FALSE(svc.resident(0));
    EXPECT_TRUE(svc.evictedSinceAdmission(0));
    EXPECT_EQ(svc.counters().get("svc.evictions"), 1u);
    EXPECT_EQ(svc.counters().get("svc.reuploads"), 0u);

    // Bringing flow 0 back is a re-upload (victim: flow 1, now LRU).
    const auto back = svc.saveEvicting(0, {1}).value();
    EXPECT_TRUE(back.reupload);
    EXPECT_TRUE(back.evicted);
    EXPECT_EQ(back.victim, 1u);
    EXPECT_FALSE(svc.evictedSinceAdmission(0));
    EXPECT_EQ(svc.counters().get("svc.evictions"), 2u);
    EXPECT_EQ(svc.counters().get("svc.reuploads"), 1u);
}

TEST(SvcEvict, InvalidateIsNotAnEviction)
{
    StateVectorCache svc(2, SvcPolicyKind::Lru);
    EXPECT_TRUE(svc.saveEvicting(0, {1}).ok());
    EXPECT_TRUE(svc.invalidate(0)); // deliberate drop (flow died)
    // The same id coming back is a fresh compulsory admission.
    EXPECT_FALSE(svc.saveEvicting(0, {1}).value().reupload);
    EXPECT_EQ(svc.counters().get("svc.reuploads"), 0u);
}

TEST(SvcEvict, PinnedEntriesAreNeverVictims)
{
    StateVectorCache svc(2, SvcPolicyKind::Lru);
    EXPECT_TRUE(svc.saveEvicting(0, {1}, 0, /*pinned=*/true).ok());
    EXPECT_TRUE(svc.saveEvicting(1, {2}).ok());
    for (FlowId f = 2; f < 6; ++f) {
        const auto adm = svc.saveEvicting(f, {f}).value();
        EXPECT_TRUE(adm.evicted);
        EXPECT_NE(adm.victim, 0u) << "pinned flow evicted";
    }
    EXPECT_TRUE(svc.resident(0));

    // All residents pinned: admission fails recoverably.
    StateVectorCache tiny(1, SvcPolicyKind::CostAware);
    EXPECT_TRUE(tiny.saveEvicting(0, {1}, 0, true).ok());
    const auto full = tiny.saveEvicting(1, {2});
    ASSERT_FALSE(full.ok());
    EXPECT_EQ(full.status().code(), ErrorCode::CapacityExceeded);
    EXPECT_EQ(tiny.counters().get("svc.save_rejects"), 1u);
}

TEST(SvcCounters, InvalidateMissesAreCountedSeparately)
{
    StateVectorCache svc(4);
    EXPECT_TRUE(svc.save(0, {1}).ok());
    EXPECT_TRUE(svc.invalidate(0));
    // Not resident any more: must not inflate svc.invalidates.
    EXPECT_FALSE(svc.invalidate(0));
    EXPECT_FALSE(svc.invalidate(42));
    EXPECT_EQ(svc.counters().get("svc.invalidates"), 1u);
    EXPECT_EQ(svc.counters().get("svc.invalidate_misses"), 2u);
}

TEST(SvcCounters, LoadsSplitIntoHitsAndMisses)
{
    StateVectorCache svc(4);
    EXPECT_TRUE(svc.save(0, {1}).ok());
    EXPECT_TRUE(svc.load(0).ok());
    EXPECT_TRUE(svc.load(0).ok());
    EXPECT_FALSE(svc.load(9).ok());
    EXPECT_EQ(svc.counters().get("svc.load_hits"), 2u);
    EXPECT_EQ(svc.counters().get("svc.load_misses"), 1u);
    // svc.loads stays the sum, so existing dashboards keep working.
    EXPECT_EQ(svc.counters().get("svc.loads"), 3u);
}

TEST(SvcFaultMatrix, NonResidentCompareIsRecoverable)
{
    // The fault-matrix scenario behind the contract: an eviction (or
    // an injected evict-svc fault) lands between a flow's save and a
    // convergence check against it. The comparator must answer with a
    // typed error the scheduler can react to, not abort the process.
    StateVectorCache svc(2, SvcPolicyKind::Lru);
    EXPECT_TRUE(svc.saveEvicting(0, {1, 2}).ok());
    EXPECT_TRUE(svc.saveEvicting(1, {1, 2}).ok());
    EXPECT_TRUE(svc.equal(0, 1).value());

    EXPECT_TRUE(svc.saveEvicting(2, {3}).ok()); // evicts flow 0
    const auto cmp = svc.equal(0, 1);
    ASSERT_FALSE(cmp.ok());
    EXPECT_EQ(cmp.status().code(), ErrorCode::InvalidInput);
    EXPECT_EQ(svc.counters().get("svc.compare_misses"), 1u);

    const auto zero = svc.isZero(0);
    ASSERT_FALSE(zero.ok());
    EXPECT_EQ(zero.status().code(), ErrorCode::InvalidInput);
    EXPECT_EQ(svc.counters().get("svc.zero_check_misses"), 1u);

    // Recovery: re-uploading the vectors makes both answerable again
    // (restoring 0 evicts 1, the LRU victim, so 1 needs its own
    // re-upload before the comparison can be retried).
    EXPECT_TRUE(svc.saveEvicting(0, {1, 2}).value().reupload);
    EXPECT_TRUE(svc.saveEvicting(1, {1, 2}).value().reupload);
    EXPECT_TRUE(svc.equal(0, 1).value());
    EXPECT_FALSE(svc.isZero(0).value());
}

// --- End-to-end Evict runs -------------------------------------------

/** A board small enough to give a handful of segments. */
ApConfig
tinyBoard(std::uint32_t half_cores)
{
    ApConfig cfg = ApConfig::d480(1);
    cfg.devicesPerRank = half_cores;
    cfg.halfCoresPerDevice = 1;
    return cfg;
}

/**
 * A ruleset of @p count independent "b c{L} z" chains with lifetimes
 * spread over @p max_len, and a trace of 'c' runs separated by 'b'
 * boundaries. Every segment boundary lands on 'b' (the only other
 * symbol present), whose range is one path per rule, so enumeration
 * segments plan ~count flows; disabling component merging keeps them
 * distinct. Lifetime of a rule's flow is ~L symbols, so capacities
 * below the flow count create real replacement pressure with a skew
 * the cost-aware policy can exploit.
 */
Nfa
chainRules(std::uint32_t count, std::uint32_t max_len)
{
    std::vector<RegexRule> rules;
    for (std::uint32_t i = 0; i < count; ++i) {
        // Deterministic lifetime spread: short and long chains
        // interleaved, so victim quality matters.
        const std::uint32_t len = 4 + (i * 37) % max_len;
        rules.push_back(
            {"bc{" + std::to_string(len) + "}z",
             static_cast<ReportCode>(i), false});
    }
    return compileRuleset(rules, "chains");
}

InputTrace
chainTrace(std::size_t len, std::size_t run)
{
    std::string text;
    text.reserve(len);
    while (text.size() < len) {
        text += 'b';
        text.append(std::min(run, len - text.size()), 'c');
    }
    return InputTrace::fromString(text);
}

TEST(EvictRun, CapacityBoundaryUnderEvict)
{
    const Nfa nfa = chainRules(16, 100);
    const InputTrace input = chainTrace(4096, 255);

    PapOptions opt;
    opt.enableCcMerging = false;
    opt.overflowPolicy = OverflowPolicy::Evict;
    const PapResult probe = runPap(nfa, input, tinyBoard(4), opt);
    ASSERT_TRUE(probe.verified);
    ASSERT_GT(probe.maxFlowsPerSegment, 0u);
    // Default capacity is the D480's 512-entry SVC; 16 flows + the
    // ASG flow fit with room to spare, so the live cache never evicts.
    EXPECT_EQ(probe.svcCapacity, 512u);
    EXPECT_EQ(probe.svcEvictions, 0u);
    EXPECT_EQ(probe.svcReuploads, 0u);
    // The live cache did run (compulsory misses at least).
    EXPECT_GT(probe.svcLoadHits + probe.svcLoadMisses, 0u);

    // Exactly flows + 1 ASG contexts: still no eviction (the 512th
    // flow of the paper's cache fits; only the 513th spills).
    PapOptions fits = opt;
    fits.svcCapacity = probe.maxFlowsPerSegment + 1;
    const PapResult f = runPap(nfa, input, tinyBoard(4), fits);
    ASSERT_TRUE(f.verified);
    EXPECT_EQ(f.svcEvictions, 0u);
    EXPECT_EQ(f.svcReuploads, 0u);

    // One context short: the policy must evict.
    PapOptions spills = opt;
    spills.svcCapacity = probe.maxFlowsPerSegment;
    const PapResult s = runPap(nfa, input, tinyBoard(4), spills);
    ASSERT_TRUE(s.verified);
    EXPECT_GT(s.svcEvictions, 0u);
    EXPECT_LT(s.svcHitRate, 1.0);
    // And the reports are untouched by the pressure.
    EXPECT_EQ(s.reports, probe.reports);
    EXPECT_EQ(f.reports, probe.reports);
}

TEST(EvictRun, CostAwareBeatsLruOnSkewedLifetimes)
{
    // Lifetimes spread 4..354 symbols with capacity for about half
    // the flows: LRU thrashes the cyclic TDM access pattern while the
    // cost-aware policy sacrifices dying flows, keeps the long-lived
    // ones resident, and pays fewer 1668-cycle re-uploads.
    // 'b' every 512 symbols keeps it frequent enough that the
    // partitioner picks it as the boundary (one flow per rule); the
    // 511-symbol 'c' runs are longer than any chain, so lifetimes are
    // the rule lengths.
    const Nfa nfa = chainRules(48, 350);
    const InputTrace input = chainTrace(16384, 511);

    PapOptions base;
    base.enableCcMerging = false;
    base.overflowPolicy = OverflowPolicy::Evict;
    base.svcCapacity = 24;

    PapOptions lru = base;
    lru.svcPolicy = SvcPolicyKind::Lru;
    PapOptions cost = base;
    cost.svcPolicy = SvcPolicyKind::CostAware;

    const PapResult rl = runPap(nfa, input, tinyBoard(4), lru);
    const PapResult rc = runPap(nfa, input, tinyBoard(4), cost);
    ASSERT_TRUE(rl.verified);
    ASSERT_TRUE(rc.verified);
    EXPECT_GT(rl.svcReuploads, 0u); // the workload does thrash LRU
    EXPECT_LT(rc.svcReuploads, rl.svcReuploads);
    EXPECT_GT(rc.svcHitRate, rl.svcHitRate);
    EXPECT_LE(rc.papCycles, rl.papCycles);
    // Same functional answer regardless of who was evicted when.
    EXPECT_EQ(rc.reports, rl.reports);
}

TEST(EvictRun, ReportsAreByteIdenticalAcrossPoliciesAndThreads)
{
    const Nfa nfa = chainRules(20, 120);
    const InputTrace input = chainTrace(8192, 511);

    PapOptions ref_opt;
    ref_opt.enableCcMerging = false;
    ref_opt.svcCapacity = 8; // overflows: 20 flows through 8 contexts
    ref_opt.overflowPolicy = OverflowPolicy::Batch;
    const PapResult ref = runPap(nfa, input, tinyBoard(4), ref_opt);
    ASSERT_TRUE(ref.verified);
    ASSERT_GT(ref.svcBatches, 1u); // the batch path really batched

    for (const auto policy :
         {OverflowPolicy::Batch, OverflowPolicy::Evict}) {
        for (const auto kind :
             {SvcPolicyKind::Lru, SvcPolicyKind::Fifo,
              SvcPolicyKind::CostAware}) {
            for (const std::uint32_t threads : {1u, 4u}) {
                PapOptions opt = ref_opt;
                opt.overflowPolicy = policy;
                opt.svcPolicy = kind;
                opt.threads = threads;
                const PapResult r =
                    runPap(nfa, input, tinyBoard(4), opt);
                const std::string what =
                    std::string(policy == OverflowPolicy::Evict
                                    ? "evict"
                                    : "batch") +
                    "/" + svcPolicyName(kind) + "/t" +
                    std::to_string(threads);
                ASSERT_TRUE(r.verified) << what;
                EXPECT_EQ(r.reports, ref.reports) << what;
                EXPECT_EQ(r.papReportEvents, ref.papReportEvents)
                    << what;
                EXPECT_EQ(r.seqReportEvents, ref.seqReportEvents)
                    << what;
                if (policy == OverflowPolicy::Evict)
                    EXPECT_GT(r.svcEvictions, 0u) << what;
            }
        }
    }
}

} // namespace
} // namespace pap
