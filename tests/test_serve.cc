/**
 * @file
 * Robustness contract of the serve subsystem: per-stream results are
 * byte-identical to one-shot runs for any chunking and thread count,
 * admission sheds with typed errors at the configured caps, faulty
 * streams ride the watchdog -> retry -> oracle ladder (and quarantine)
 * without touching siblings, hot swaps keep in-flight streams on
 * their generation, and drain/resume round-trips through PAPCKPT.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/rng.h"
#include "nfa/glushkov.h"
#include "pap/exec/driver.h"
#include "pap/fault_injector.h"
#include "pap/runner.h"
#include "serve/fair_queue.h"
#include "serve/manifest.h"
#include "serve/server.h"
#include "workload_helpers.h"

namespace pap {
namespace serve {
namespace {

Nfa
serveRuleset()
{
    return compileRuleset(
        {{"ab.*cd", 1}, {"fgh", 2}, {"h[af]+g", 3}}, "serve-rules");
}

Nfa
otherRuleset()
{
    return compileRuleset({{"abc", 7}, {"dd+", 8}}, "other-rules");
}

InputTrace
serveTrace(std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    return randomTextTrace(rng, len, "abcdfgh ");
}

std::vector<ReportEvent>
sequentialReports(const Nfa &nfa, const InputTrace &trace)
{
    PapOptions opt;
    const SequentialResult r = runSequential(nfa, trace, opt);
    EXPECT_TRUE(r.status.ok()) << r.status.toString();
    return r.reports;
}

ServeOptions
smallOptions()
{
    ServeOptions opt;
    opt.threads = 2;
    opt.chunkSymbols = 512;
    opt.boundaryLookback = 64;
    return opt;
}

/** Open, feed in @p piece-sized slices, finish. */
Result<SessionReport>
streamAll(Server &server, const std::string &tenant,
          const InputTrace &trace, std::size_t piece)
{
    const Result<SessionId> opened = server.open(tenant);
    if (!opened.ok())
        return opened.status();
    for (std::size_t at = 0; at < trace.size(); at += piece) {
        const std::size_t len = std::min(piece, trace.size() - at);
        const Status fed =
            server.feed(opened.value(), trace.ptr(at), len);
        if (!fed.ok())
            return fed;
    }
    return server.finish(opened.value());
}

// ---------------------------------------------------------------------
// FairQueue

TEST(FairQueue, EqualWeightsAlternate)
{
    FairQueue q;
    for (std::uint64_t i = 0; i < 4; ++i) {
        q.push("a", {1, i});
        q.push("b", {2, i});
    }
    std::vector<std::uint64_t> order;
    while (auto t = q.pop())
        order.push_back(t->session);
    ASSERT_EQ(order.size(), 8u);
    // Strict alternation: neither tenant is ever served twice in a
    // row while the other has work.
    for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_NE(order[i], order[i - 1]) << "at pop " << i;
}

TEST(FairQueue, WeightsSetShares)
{
    FairQueue q;
    q.setWeight("heavy", 2.0);
    for (std::uint64_t i = 0; i < 30; ++i) {
        q.push("heavy", {1, i});
        q.push("light", {2, i});
    }
    std::size_t heavy = 0, light = 0;
    for (int i = 0; i < 15; ++i) {
        const auto t = q.pop();
        ASSERT_TRUE(t.has_value());
        (t->session == 1 ? heavy : light) += 1;
    }
    EXPECT_EQ(heavy, 10u);
    EXPECT_EQ(light, 5u);
}

TEST(FairQueue, TinyWeightStaysWorkConserving)
{
    FairQueue q;
    q.setWeight("slow", 1e-6);
    q.push("slow", {1, 0});
    const auto t = q.pop();
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->session, 1u);
    EXPECT_TRUE(q.empty());
}

TEST(FairQueue, EraseSessionDropsOnlyThatStream)
{
    FairQueue q;
    q.push("a", {1, 0});
    q.push("a", {2, 0});
    q.push("a", {1, 1});
    q.push("b", {3, 0});
    q.eraseSession(1);
    EXPECT_EQ(q.size(), 2u);
    std::vector<std::uint64_t> left;
    while (auto t = q.pop())
        left.push_back(t->session);
    EXPECT_EQ(left, (std::vector<std::uint64_t>{2, 3}));
}

// ---------------------------------------------------------------------
// Retry backoff (satellite: seeded jitter)

TEST(RetryBackoff, JitterIsDeterministicAndBounded)
{
    exec::HardenedExecOptions opt;
    opt.backoffBaseMs = 1;
    opt.backoffCapMs = 64;
    opt.backoffJitter = true;
    opt.backoffJitterSeed = 42;
    for (std::uint32_t retry = 0; retry < 12; ++retry) {
        for (std::size_t index = 0; index < 8; ++index) {
            const auto a = exec::retryBackoff(opt, index, retry);
            const auto b = exec::retryBackoff(opt, index, retry);
            EXPECT_EQ(a, b) << "same inputs must draw the same delay";
            const std::uint64_t determ = std::min<std::uint64_t>(
                static_cast<std::uint64_t>(opt.backoffBaseMs)
                    << std::min(retry, 20u),
                opt.backoffCapMs);
            EXPECT_LE(static_cast<std::uint64_t>(a.count()), determ);
            EXPECT_GE(static_cast<std::uint64_t>(a.count()),
                      determ > 1 ? determ / 2 : determ);
        }
    }
}

TEST(RetryBackoff, JitterOffIsExactExponential)
{
    exec::HardenedExecOptions opt;
    opt.backoffBaseMs = 2;
    opt.backoffCapMs = 32;
    opt.backoffJitter = false;
    EXPECT_EQ(exec::retryBackoff(opt, 0, 0).count(), 2);
    EXPECT_EQ(exec::retryBackoff(opt, 0, 1).count(), 4);
    EXPECT_EQ(exec::retryBackoff(opt, 0, 3).count(), 16);
    EXPECT_EQ(exec::retryBackoff(opt, 0, 9).count(), 32);
}

TEST(RetryBackoff, DifferentSeedsDecorrelate)
{
    exec::HardenedExecOptions a, b;
    a.backoffCapMs = b.backoffCapMs = 1024;
    a.backoffBaseMs = b.backoffBaseMs = 1024;
    a.backoffJitterSeed = 1;
    b.backoffJitterSeed = 2;
    int differ = 0;
    for (std::size_t index = 0; index < 16; ++index)
        differ += exec::retryBackoff(a, index, 0) !=
                  exec::retryBackoff(b, index, 0);
    EXPECT_GT(differ, 0) << "seed must influence the draw";
}

// ---------------------------------------------------------------------
// Correctness: serve == one-shot

TEST(Serve, ReportsMatchSequentialForAnyFeedGranularity)
{
    const Nfa nfa = serveRuleset();
    const InputTrace trace = serveTrace(16384, 11);
    const auto expected = sequentialReports(nfa, trace);
    for (const std::size_t piece : {std::size_t(16384),
                                    std::size_t(4096),
                                    std::size_t(37)}) {
        Server server(smallOptions(), nfa);
        ASSERT_TRUE(server.status().ok());
        const auto report = streamAll(server, "t", trace, piece);
        ASSERT_TRUE(report.ok()) << report.status().toString();
        EXPECT_EQ(report.value().reports, expected)
            << "feed piece " << piece;
        EXPECT_EQ(report.value().symbols, trace.size());
        EXPECT_GT(report.value().chunks, 1u);
    }
}

TEST(Serve, ReportsMatchForAnyThreadCountAndChunk)
{
    const Nfa nfa = serveRuleset();
    const InputTrace trace = serveTrace(12000, 23);
    const auto expected = sequentialReports(nfa, trace);
    for (const std::uint32_t threads : {1u, 4u}) {
        for (const std::uint32_t chunk : {256u, 2048u}) {
            ServeOptions opt = smallOptions();
            opt.threads = threads;
            opt.chunkSymbols = chunk;
            Server server(opt, nfa);
            const auto report = streamAll(server, "t", trace, 1000);
            ASSERT_TRUE(report.ok()) << report.status().toString();
            EXPECT_EQ(report.value().reports, expected)
                << threads << " threads, chunk " << chunk;
        }
    }
}

TEST(Serve, ConcurrentStreamsAreIndependent)
{
    const Nfa nfa = serveRuleset();
    ServeOptions opt = smallOptions();
    opt.threads = 4;
    Server server(opt, nfa);
    std::vector<InputTrace> traces;
    std::vector<std::vector<ReportEvent>> expected;
    for (std::uint64_t i = 0; i < 6; ++i) {
        traces.push_back(serveTrace(6000 + 700 * i, 100 + i));
        expected.push_back(sequentialReports(nfa, traces.back()));
    }
    std::vector<std::thread> clients;
    std::vector<Status> failures(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i)
        clients.emplace_back([&, i] {
            const auto report = streamAll(
                server, "tenant" + std::to_string(i % 3), traces[i],
                777);
            if (!report.ok()) {
                failures[i] = report.status();
                return;
            }
            if (report.value().reports != expected[i])
                failures[i] = Status::error(ErrorCode::InvalidInput,
                                            "report mismatch");
        });
    for (auto &c : clients)
        c.join();
    for (std::size_t i = 0; i < failures.size(); ++i)
        EXPECT_TRUE(failures[i].ok())
            << "stream " << i << ": " << failures[i].toString();
    EXPECT_EQ(server.stats().completed, traces.size());
}

TEST(Serve, EmptyStreamCompletesWithNoReports)
{
    Server server(smallOptions(), serveRuleset());
    const auto id = server.open("t");
    ASSERT_TRUE(id.ok());
    const auto report = server.finish(id.value());
    ASSERT_TRUE(report.ok()) << report.status().toString();
    EXPECT_TRUE(report.value().reports.empty());
    EXPECT_EQ(report.value().symbols, 0u);
}

// ---------------------------------------------------------------------
// Admission control

TEST(Serve, AdmissionShedsTypedAtGlobalCap)
{
    ServeOptions opt = smallOptions();
    opt.maxSessions = 2;
    Server server(opt, serveRuleset());
    const auto a = server.open("t1");
    const auto b = server.open("t2");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    const auto c = server.open("t3");
    ASSERT_FALSE(c.ok());
    EXPECT_EQ(c.status().code(), ErrorCode::ResourceExhausted);
    EXPECT_EQ(server.stats().shed, 1u);
    // Finishing a stream frees its slot.
    ASSERT_TRUE(server.finish(a.value()).ok());
    EXPECT_TRUE(server.open("t3").ok());
}

TEST(Serve, AdmissionShedsTypedAtTenantCap)
{
    ServeOptions opt = smallOptions();
    opt.tenantSessionCap = 1;
    Server server(opt, serveRuleset());
    ASSERT_TRUE(server.open("alice").ok());
    const auto second = server.open("alice");
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.status().code(), ErrorCode::ResourceExhausted);
    // Another tenant is unaffected by alice's cap.
    EXPECT_TRUE(server.open("bob").ok());
}

TEST(Serve, DrainingShedsNewSessions)
{
    Server server(smallOptions(), serveRuleset());
    ASSERT_TRUE(server.drain().ok());
    const auto opened = server.open("t");
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.status().code(), ErrorCode::ResourceExhausted);
}

TEST(Serve, SessionDeadlineExpiresTyped)
{
    ServeOptions opt = smallOptions();
    opt.sessionDeadlineMs = 5.0;
    Server server(opt, serveRuleset());
    const auto id = server.open("t");
    ASSERT_TRUE(id.ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    const Symbol byte = 'a';
    const Status fed = server.feed(id.value(), &byte, 1);
    ASSERT_FALSE(fed.ok());
    EXPECT_EQ(fed.code(), ErrorCode::DeadlineExceeded);
}

// ---------------------------------------------------------------------
// Fault ladder

TEST(Serve, StalledChunksRecoverViaOracleAndBackpressureHolds)
{
    const Nfa nfa = serveRuleset();
    const InputTrace trace = serveTrace(256, 5);
    const auto expected = sequentialReports(nfa, trace);

    auto injector = FaultInjector::fromSpec("stall-worker:100000:1.0", 9);
    ASSERT_TRUE(injector.ok());
    ServeOptions opt;
    opt.threads = 1;
    opt.sessionWindow = 1;
    opt.chunkSymbols = 64;
    opt.boundaryLookback = 8;
    opt.quarantineAfter = 1000; // recovery, not quarantine, today
    opt.pap.segmentDeadlineMs = 15.0;
    opt.pap.faultInjector = &injector.value();
    Server server(opt, nfa);

    const auto id = server.open("t");
    ASSERT_TRUE(id.ok());
    bool saw_backpressure = false;
    for (std::size_t at = 0; at < trace.size(); at += 64) {
        for (;;) {
            const auto fed =
                server.tryFeed(id.value(), trace.ptr(at), 64);
            ASSERT_TRUE(fed.ok()) << fed.status().toString();
            if (fed.value())
                break;
            saw_backpressure = true;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
    }
    const auto report = server.finish(id.value());
    ASSERT_TRUE(report.ok()) << report.status().toString();
    EXPECT_EQ(report.value().reports, expected);
    EXPECT_GT(report.value().chunksRecovered, 0u);
    EXPECT_TRUE(saw_backpressure)
        << "a 1-chunk window over stalling workers must push back";
    EXPECT_GT(injector.value().recovered(), 0u);
}

TEST(Serve, QuarantineIsolatesPoisonedStreams)
{
    const Nfa nfa = serveRuleset();
    // rate selects sessions by a pure hash of (seed, session id), so
    // with session ids 1..6 this seed deterministically poisons some
    // streams and leaves others clean.
    auto injector =
        FaultInjector::fromSpec("crash-worker:1000000:0.4", 3);
    ASSERT_TRUE(injector.ok());
    ServeOptions opt = smallOptions();
    opt.threads = 4;
    opt.quarantineAfter = 2;
    opt.pap.faultInjector = &injector.value();
    Server server(opt, nfa);

    std::vector<InputTrace> traces;
    std::vector<SessionId> ids;
    for (std::uint64_t i = 0; i < 6; ++i) {
        traces.push_back(serveTrace(4000, 300 + i));
        const auto id = server.open("tenant" + std::to_string(i));
        ASSERT_TRUE(id.ok());
        ids.push_back(id.value());
    }
    int quarantined = 0, clean = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        Status fed;
        for (std::size_t at = 0;
             at < traces[i].size() && fed.ok(); at += 512)
            fed = server.feed(ids[i], traces[i].ptr(at),
                              std::min<std::size_t>(
                                  512, traces[i].size() - at));
        const auto report = server.finish(ids[i]);
        const Status st = report.ok() ? Status() : report.status();
        if (!fed.ok() || !st.ok()) {
            const ErrorCode code =
                fed.ok() ? st.code() : fed.code();
            EXPECT_EQ(code, ErrorCode::StreamQuarantined)
                << "stream " << i << " failed untyped";
            ++quarantined;
        } else {
            // A sibling of a quarantined stream must stay exact.
            EXPECT_EQ(report.value().reports,
                      sequentialReports(nfa, traces[i]))
                << "stream " << i;
            ++clean;
        }
    }
    EXPECT_GT(quarantined, 0) << "pick another fault seed";
    EXPECT_GT(clean, 0) << "pick another fault seed";
    EXPECT_EQ(server.stats().quarantined,
              static_cast<std::uint64_t>(quarantined));
}

TEST(Serve, DisconnectFaultAbortsOnlyVictims)
{
    const Nfa nfa = serveRuleset();
    auto injector =
        FaultInjector::fromSpec("disconnect-client:2:0.4", 17);
    ASSERT_TRUE(injector.ok());
    ServeOptions opt = smallOptions();
    opt.pap.faultInjector = &injector.value();
    Server server(opt, nfa);

    int dropped = 0, completed = 0;
    for (std::uint64_t i = 0; i < 8; ++i) {
        const InputTrace trace = serveTrace(3000, 500 + i);
        const auto report = streamAll(server, "t", trace, 700);
        if (report.ok()) {
            EXPECT_EQ(report.value().reports,
                      sequentialReports(nfa, trace));
            ++completed;
        } else {
            EXPECT_EQ(report.status().code(), ErrorCode::Cancelled);
            ++dropped;
        }
    }
    EXPECT_GT(dropped, 0) << "pick another fault seed";
    EXPECT_GT(completed, 0) << "pick another fault seed";
    EXPECT_LE(dropped, 2) << "budget must cap disconnects";
    EXPECT_EQ(server.stats().aborted,
              static_cast<std::uint64_t>(dropped));
}

// ---------------------------------------------------------------------
// Hot swap

TEST(Serve, SwapKeepsInFlightStreamsOnTheirGeneration)
{
    const Nfa first = serveRuleset();
    const Nfa second = otherRuleset();
    const InputTrace trace_a = serveTrace(8000, 41);
    Rng rng(42);
    const InputTrace trace_b = randomTextTrace(rng, 8000, "abcd ");

    Server server(smallOptions(), first);
    const auto a = server.open("t");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(
        server.feed(a.value(), trace_a.ptr(0), 4000).ok());

    const auto swapped = server.swap(second);
    ASSERT_TRUE(swapped.ok()) << swapped.status().toString();
    EXPECT_EQ(swapped.value(), 2u);
    EXPECT_EQ(server.generation(), 2u);

    const auto b = server.open("t");
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(server
                    .feed(b.value(), trace_b.ptr(0), trace_b.size())
                    .ok());
    ASSERT_TRUE(
        server.feed(a.value(), trace_a.ptr(4000), 4000).ok());

    const auto report_a = server.finish(a.value());
    const auto report_b = server.finish(b.value());
    ASSERT_TRUE(report_a.ok());
    ASSERT_TRUE(report_b.ok());
    // The pre-swap stream finished on the ruleset it opened with.
    EXPECT_EQ(report_a.value().generation, 1u);
    EXPECT_EQ(report_a.value().reports,
              sequentialReports(first, trace_a));
    EXPECT_EQ(report_b.value().generation, 2u);
    EXPECT_EQ(report_b.value().reports,
              sequentialReports(second, trace_b));
}

TEST(Serve, SwapDuringStreamFaultBumpsGenerationHarmlessly)
{
    const Nfa nfa = serveRuleset();
    const InputTrace trace = serveTrace(8000, 77);
    auto injector =
        FaultInjector::fromSpec("swap-during-stream:3:1.0", 1);
    ASSERT_TRUE(injector.ok());
    ServeOptions opt = smallOptions();
    opt.pap.faultInjector = &injector.value();
    Server server(opt, nfa);
    const auto report = streamAll(server, "t", trace, 1024);
    ASSERT_TRUE(report.ok()) << report.status().toString();
    EXPECT_EQ(report.value().reports, sequentialReports(nfa, trace));
    EXPECT_GT(server.generation(), 1u)
        << "the injected swap must reinstall a new generation";
}

// ---------------------------------------------------------------------
// Drain / checkpoint / resume

TEST(Serve, DrainCheckpointResumeRoundTrip)
{
    const Nfa nfa = serveRuleset();
    const InputTrace trace = serveTrace(10000, 61);
    const auto expected = sequentialReports(nfa, trace);
    const std::string dir = ::testing::TempDir() + "serve_ckpt";
    std::remove((dir + "/t-k.papckpt").c_str());
    ASSERT_EQ(0, std::system(("mkdir -p " + dir).c_str()));

    ServeOptions opt = smallOptions();
    opt.checkpointDir = dir;
    std::uint64_t offset = 0;
    {
        Server server(opt, nfa);
        const auto id = server.open("t", "k");
        ASSERT_TRUE(id.ok());
        ASSERT_TRUE(server.feed(id.value(), trace.ptr(0), 6000).ok());
        ASSERT_TRUE(server.drain().ok());
        EXPECT_EQ(server.stats().checkpointed, 1u);
        // The drained session is terminal with a typed error.
        const auto report = server.finish(id.value());
        ASSERT_FALSE(report.ok());
        EXPECT_EQ(report.status().code(), ErrorCode::Cancelled);
    }
    {
        Server server(opt, nfa);
        const auto resumed = server.resume("t", "k");
        ASSERT_TRUE(resumed.ok()) << resumed.status().toString();
        offset = resumed.value().offset;
        EXPECT_EQ(offset, 6000u)
            << "drain must flush and compose every fed symbol";
        ASSERT_TRUE(server
                        .feed(resumed.value().id, trace.ptr(offset),
                              trace.size() - offset)
                        .ok());
        const auto report = server.finish(resumed.value().id);
        ASSERT_TRUE(report.ok()) << report.status().toString();
        EXPECT_EQ(report.value().reports, expected)
            << "resumed stream must equal the unbroken run";
        EXPECT_EQ(report.value().resumedSymbols, offset);
        EXPECT_EQ(server.stats().resumed, 1u);
    }
}

TEST(Serve, ResumeRejectsForeignCheckpoint)
{
    const Nfa nfa = serveRuleset();
    const InputTrace trace = serveTrace(4000, 71);
    const std::string dir = ::testing::TempDir() + "serve_ckpt2";
    ASSERT_EQ(0, std::system(("mkdir -p " + dir).c_str()));
    ServeOptions opt = smallOptions();
    opt.checkpointDir = dir;
    {
        Server server(opt, nfa);
        const auto id = server.open("t", "k2");
        ASSERT_TRUE(id.ok());
        ASSERT_TRUE(
            server.feed(id.value(), trace.ptr(0), trace.size()).ok());
        ASSERT_TRUE(server.drain().ok());
    }
    // A daemon serving a different ruleset must refuse the checkpoint
    // instead of silently composing garbage on top of it.
    Server other(opt, otherRuleset());
    const auto resumed = other.resume("t", "k2");
    ASSERT_FALSE(resumed.ok());
    EXPECT_EQ(resumed.status().code(), ErrorCode::InvalidInput);
    // The failed resume must not leak its admission slot.
    EXPECT_EQ(other.stats().openSessions, 0u);
}

TEST(Serve, ResumeWithoutCheckpointDirIsTyped)
{
    Server server(smallOptions(), serveRuleset());
    const auto resumed = server.resume("t", "k");
    ASSERT_FALSE(resumed.ok());
    EXPECT_EQ(resumed.status().code(), ErrorCode::InvalidInput);
}

// ---------------------------------------------------------------------
// Hard-crash tolerance: manifest journal, periodic checkpoints, and
// cold-start recovery. "Crash" below means destroying the Server
// without drain() — the destructor journals nothing, exactly like a
// kill -9 from the manifest's point of view.

/** Fresh per-test checkpoint directory (wiped of prior-run state). */
std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name;
    EXPECT_EQ(0, std::system(("rm -rf " + dir).c_str()));
    EXPECT_EQ(0, std::system(("mkdir -p " + dir).c_str()));
    return dir;
}

TEST(Manifest, RoundTripReplayAndCompaction)
{
    const std::string dir = freshDir("serve_manifest1");
    const std::string path = dir + "/" + kManifestFileName;

    {
        auto journal = ManifestJournal::open(path);
        ASSERT_TRUE(journal.ok()) << journal.status().toString();
        ManifestRecord admit;
        admit.kind = ManifestRecordKind::Admit;
        admit.identity = 0xABCDu;
        admit.generation = 3;
        admit.tenant = "t";
        admit.key = "k";
        ASSERT_TRUE(journal.value().append(admit).ok());
        ManifestRecord ckpt;
        ckpt.kind = ManifestRecordKind::CheckpointWritten;
        ckpt.symbols = 4096;
        ckpt.chunks = 8;
        ckpt.tenant = "t";
        ckpt.key = "k";
        ASSERT_TRUE(journal.value().append(ckpt).ok());
        ManifestRecord admit2 = admit;
        admit2.key = "done";
        ASSERT_TRUE(journal.value().append(admit2).ok());
        ManifestRecord complete;
        complete.kind = ManifestRecordKind::Complete;
        complete.tenant = "t";
        complete.key = "done";
        ASSERT_TRUE(journal.value().append(complete).ok());
        journal.value().close();
    }

    auto replay = replayManifest(path);
    ASSERT_TRUE(replay.ok()) << replay.status().toString();
    EXPECT_EQ(replay.value().records, 4u);
    EXPECT_EQ(replay.value().torn, 0u);
    EXPECT_EQ(replay.value().completed, 1u);
    EXPECT_EQ(replay.value().maxGeneration, 3u);
    ASSERT_EQ(replay.value().live.size(), 1u);
    const auto &live = replay.value().live.at({"t", "k"});
    EXPECT_EQ(live.identity, 0xABCDu);
    EXPECT_EQ(live.symbols, 4096u);
    EXPECT_TRUE(live.checkpointed);

    // Compaction reproduces the same live set from fewer records.
    ASSERT_TRUE(compactManifest(path, replay.value()).ok());
    auto compacted = replayManifest(path);
    ASSERT_TRUE(compacted.ok());
    ASSERT_EQ(compacted.value().live.size(), 1u);
    const auto &kept = compacted.value().live.at({"t", "k"});
    EXPECT_EQ(kept.identity, live.identity);
    EXPECT_EQ(kept.symbols, live.symbols);
    EXPECT_EQ(kept.chunks, live.chunks);
    EXPECT_TRUE(kept.checkpointed);
    EXPECT_EQ(compacted.value().maxGeneration, 3u);
    EXPECT_EQ(compacted.value().completed, 0u);
}

TEST(Manifest, TornTailStopsReplayAtLastGoodRecord)
{
    const std::string dir = freshDir("serve_manifest2");
    const std::string path = dir + "/" + kManifestFileName;
    {
        auto journal = ManifestJournal::open(path);
        ASSERT_TRUE(journal.ok());
        ManifestRecord admit;
        admit.kind = ManifestRecordKind::Admit;
        admit.tenant = "t";
        admit.key = "k";
        ASSERT_TRUE(journal.value().append(admit).ok());
        journal.value().close();
    }
    // A crash mid-append leaves a partial frame at the tail; replay
    // must surface the good prefix and flag the tear, not misparse.
    {
        std::FILE *f = std::fopen(path.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        const unsigned char torn[3] = {2, 0x40, 0x13};
        ASSERT_EQ(std::fwrite(torn, 1, sizeof(torn), f), sizeof(torn));
        std::fclose(f);
    }
    auto replay = replayManifest(path);
    ASSERT_TRUE(replay.ok()) << replay.status().toString();
    EXPECT_EQ(replay.value().records, 1u);
    EXPECT_EQ(replay.value().torn, 1u);
    EXPECT_EQ(replay.value().live.count({"t", "k"}), 1u);
}

TEST(Serve, PeriodicCheckpointCrashResumeRoundTrip)
{
    const Nfa nfa = serveRuleset();
    const InputTrace trace = serveTrace(10000, 83);
    const auto expected = sequentialReports(nfa, trace);
    ServeOptions opt = smallOptions();
    opt.checkpointDir = freshDir("serve_crash1");
    opt.checkpointIntervalChunks = 1;
    {
        Server server(opt, nfa);
        const auto id = server.open("t", "pk");
        ASSERT_TRUE(id.ok());
        ASSERT_TRUE(server.feed(id.value(), trace.ptr(0), 6000).ok());
        // The writer runs off the hot path; wait for one durable save.
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(10);
        while (server.stats().periodicCheckpoints == 0 &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ASSERT_GT(server.stats().periodicCheckpoints, 0u);
        // Crash: no drain, no journaled completion.
    }
    Server server(opt, nfa);
    EXPECT_EQ(server.stats().sessionsResumable, 1u);
    const auto resumed = server.resume("t", "pk");
    ASSERT_TRUE(resumed.ok()) << resumed.status().toString();
    const std::uint64_t offset = resumed.value().offset;
    EXPECT_GT(offset, 0u) << "a periodic checkpoint must bound replay";
    EXPECT_LE(offset, 6000u);
    ASSERT_TRUE(server
                    .feed(resumed.value().id, trace.ptr(offset),
                          trace.size() - offset)
                    .ok());
    const auto report = server.finish(resumed.value().id);
    ASSERT_TRUE(report.ok()) << report.status().toString();
    EXPECT_EQ(report.value().reports, expected)
        << "recovered stream must equal the unbroken run";
    EXPECT_EQ(report.value().resumedSymbols, offset);
    EXPECT_EQ(server.stats().sessionsRecovered, 1u);
}

TEST(Serve, CrashBeforeFirstCheckpointResumesFresh)
{
    const Nfa nfa = serveRuleset();
    const InputTrace trace = serveTrace(4000, 89);
    const auto expected = sequentialReports(nfa, trace);
    ServeOptions opt = smallOptions();
    opt.checkpointDir = freshDir("serve_crash2");
    // No periodic interval: the crash lands before any checkpoint,
    // so only the manifest's Admit record knows the session.
    {
        Server server(opt, nfa);
        const auto id = server.open("t", "fresh");
        ASSERT_TRUE(id.ok());
        ASSERT_TRUE(server.feed(id.value(), trace.ptr(0), 2000).ok());
    }
    Server server(opt, nfa);
    EXPECT_EQ(server.stats().sessionsResumable, 1u);
    const auto resumed = server.resume("t", "fresh");
    ASSERT_TRUE(resumed.ok()) << resumed.status().toString();
    EXPECT_EQ(resumed.value().offset, 0u)
        << "no checkpoint -> replay from the start";
    ASSERT_TRUE(server
                    .feed(resumed.value().id, trace.ptr(0),
                          trace.size())
                    .ok());
    const auto report = server.finish(resumed.value().id);
    ASSERT_TRUE(report.ok()) << report.status().toString();
    EXPECT_EQ(report.value().reports, expected);
    EXPECT_EQ(server.stats().sessionsRecovered, 1u);
}

TEST(Serve, TornManifestTailToleratedOnBoot)
{
    const Nfa nfa = serveRuleset();
    const InputTrace trace = serveTrace(10000, 97);
    const auto expected = sequentialReports(nfa, trace);
    ServeOptions opt = smallOptions();
    opt.checkpointDir = freshDir("serve_crash3");
    {
        Server server(opt, nfa);
        const auto id = server.open("t", "tk");
        ASSERT_TRUE(id.ok());
        ASSERT_TRUE(server.feed(id.value(), trace.ptr(0), 6000).ok());
        ASSERT_TRUE(server.drain().ok());
    }
    // Tear the journal tail, as a crash mid-append would.
    {
        const std::string mpath =
            opt.checkpointDir + "/" + kManifestFileName;
        std::FILE *f = std::fopen(mpath.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        const unsigned char torn[5] = {1, 0xFF, 0x00, 0x00, 0x00};
        ASSERT_EQ(std::fwrite(torn, 1, sizeof(torn), f), sizeof(torn));
        std::fclose(f);
    }
    Server server(opt, nfa);
    EXPECT_EQ(server.stats().journalTorn, 1u);
    const auto resumed = server.resume("t", "tk");
    ASSERT_TRUE(resumed.ok()) << resumed.status().toString();
    EXPECT_EQ(resumed.value().offset, 6000u);
    ASSERT_TRUE(server
                    .feed(resumed.value().id, trace.ptr(6000),
                          trace.size() - 6000)
                    .ok());
    const auto report = server.finish(resumed.value().id);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.value().reports, expected);
}

TEST(Serve, TornManifestWriteFaultDegradesGracefully)
{
    const Nfa nfa = serveRuleset();
    const InputTrace trace = serveTrace(4000, 101);
    const auto expected = sequentialReports(nfa, trace);
    auto made = FaultInjector::fromSpec("torn-manifest-write:1:1.0", 5);
    ASSERT_TRUE(made.ok()) << made.status().toString();
    FaultInjector injector = std::move(made.value());
    ServeOptions opt = smallOptions();
    opt.checkpointDir = freshDir("serve_crash4");
    opt.pap.faultInjector = &injector;

    Server server(opt, nfa);
    const auto id = server.open("t", "torn");
    ASSERT_TRUE(id.ok()) << "a lost journal append must not shed the "
                            "session";
    ASSERT_TRUE(
        server.feed(id.value(), trace.ptr(0), trace.size()).ok());
    const auto report = server.finish(id.value());
    ASSERT_TRUE(report.ok()) << report.status().toString();
    EXPECT_EQ(report.value().reports, expected);
    EXPECT_GE(injector.injected(FaultKind::TornManifestWrite), 1u);
}

TEST(Serve, CrashAtCheckpointFaultLeavesRecoverableState)
{
    const Nfa nfa = serveRuleset();
    const InputTrace trace = serveTrace(10000, 103);
    const auto expected = sequentialReports(nfa, trace);
    auto made = FaultInjector::fromSpec("crash-at-checkpoint:1:1.0", 7);
    ASSERT_TRUE(made.ok());
    FaultInjector injector = std::move(made.value());
    ServeOptions opt = smallOptions();
    opt.checkpointDir = freshDir("serve_crash5");
    // One periodic trigger only (11 chunks fed, interval 8), so the
    // injected crash tears the sole checkpoint write.
    opt.checkpointIntervalChunks = 8;
    opt.pap.faultInjector = &injector;
    const std::string tmp_path =
        opt.checkpointDir + "/t-ck.papckpt.tmp";
    {
        Server server(opt, nfa);
        const auto id = server.open("t", "ck");
        ASSERT_TRUE(id.ok());
        ASSERT_TRUE(server.feed(id.value(), trace.ptr(0), 6000).ok());
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(10);
        while (injector.injected(FaultKind::CrashAtCheckpoint) == 0 &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ASSERT_GE(injector.injected(FaultKind::CrashAtCheckpoint), 1u);
        // Crash with the torn temp file on disk.
    }
    EXPECT_EQ(::access(tmp_path.c_str(), F_OK), 0)
        << "the injected crash must leave its torn .tmp behind";
    ServeOptions clean = opt;
    clean.pap.faultInjector = nullptr;
    Server server(clean, nfa);
    EXPECT_EQ(server.stats().staleTmpCleaned, 1u);
    EXPECT_NE(::access(tmp_path.c_str(), F_OK), 0);
    // No durable checkpoint made it: recovery re-admits fresh.
    const auto resumed = server.resume("t", "ck");
    ASSERT_TRUE(resumed.ok()) << resumed.status().toString();
    EXPECT_EQ(resumed.value().offset, 0u);
    ASSERT_TRUE(server
                    .feed(resumed.value().id, trace.ptr(0),
                          trace.size())
                    .ok());
    const auto report = server.finish(resumed.value().id);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.value().reports, expected);
}

TEST(Serve, StaleTmpFilesSweptOnBoot)
{
    ServeOptions opt = smallOptions();
    opt.checkpointDir = freshDir("serve_crash6");
    const std::string junk = opt.checkpointDir + "/junk.papckpt.tmp";
    {
        std::FILE *f = std::fopen(junk.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("half-written checkpoint", f);
        std::fclose(f);
    }
    Server server(opt, serveRuleset());
    EXPECT_EQ(server.stats().staleTmpCleaned, 1u);
    EXPECT_NE(::access(junk.c_str(), F_OK), 0);
}

TEST(Serve, ResumeRejectsCheckpointFromSwappedGeneration)
{
    const Nfa original = serveRuleset();
    const Nfa swapped = otherRuleset();
    const InputTrace trace = serveTrace(4000, 107);
    ServeOptions opt = smallOptions();
    opt.checkpointDir = freshDir("serve_crash7");
    {
        Server server(opt, original);
        const auto gen = server.swap(swapped);
        ASSERT_TRUE(gen.ok()) << gen.status().toString();
        // The keyed session binds the post-swap generation; its drain
        // checkpoint is a `swapped`-ruleset frontier.
        const auto id = server.open("t", "sw");
        ASSERT_TRUE(id.ok());
        ASSERT_TRUE(server.feed(id.value(), trace.ptr(0), 2000).ok());
        ASSERT_TRUE(server.drain().ok());
    }
    // A restart serving the pre-swap ruleset must refuse the foreign
    // checkpoint typed instead of composing on the wrong automaton.
    {
        Server server(opt, original);
        const auto resumed = server.resume("t", "sw");
        ASSERT_FALSE(resumed.ok());
        EXPECT_EQ(resumed.status().code(), ErrorCode::InvalidInput);
        EXPECT_EQ(server.stats().openSessions, 0u);
    }
    // Booted with the ruleset the checkpoint was written under, the
    // same file resumes cleanly.
    Server server(opt, swapped);
    const auto resumed = server.resume("t", "sw");
    ASSERT_TRUE(resumed.ok()) << resumed.status().toString();
    EXPECT_EQ(resumed.value().offset, 2000u);
    ASSERT_TRUE(server
                    .feed(resumed.value().id, trace.ptr(2000),
                          trace.size() - 2000)
                    .ok());
    const auto report = server.finish(resumed.value().id);
    ASSERT_TRUE(report.ok()) << report.status().toString();
}

} // namespace
} // namespace serve
} // namespace pap
