/**
 * @file
 * Glushkov compiler tests. The key property: the homogeneous NFA
 * produced by the Glushkov construction, executed with the reference
 * engine, reports at exactly the offsets the independent Thompson
 * construction (classical NFA with epsilon moves) accepts. Both
 * constructions are derived from the same AST but share no code paths
 * beyond the parser.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/reference_engine.h"
#include "nfa/classical.h"
#include "nfa/glushkov.h"
#include "workload_helpers.h"

namespace pap {
namespace {

/** Offsets at which the Glushkov machine reports code 1. */
std::vector<std::uint64_t>
glushkovOffsets(const std::string &pattern,
                const std::vector<Symbol> &input, bool anchored)
{
    Nfa nfa;
    RegexPtr ast = expandRepeats(parseRegex(pattern));
    compileRegexInto(nfa, *ast, 1, anchored);
    nfa.finalize();
    const ReferenceResult res = referenceRun(nfa, input);
    std::vector<std::uint64_t> out;
    for (const auto &e : res.reports)
        out.push_back(e.offset);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

/** Offsets at which the Thompson oracle accepts. */
std::vector<std::uint64_t>
thompsonOffsets(const std::string &pattern,
                const std::vector<Symbol> &input, bool anchored)
{
    RegexPtr ast = expandRepeats(parseRegex(pattern));
    const ClassicalNfa cn = thompson(*ast, 1);
    const auto reports = cn.simulate(input, /*anywhere=*/!anchored);
    std::vector<std::uint64_t> out;
    for (std::size_t i = 0; i < reports.size(); ++i)
        if (!reports[i].empty())
            out.push_back(i);
    return out;
}

void
expectAgreement(const std::string &pattern, const std::string &text,
                bool anchored = false)
{
    const InputTrace trace = InputTrace::fromString(text);
    EXPECT_EQ(glushkovOffsets(pattern, trace.symbols(), anchored),
              thompsonOffsets(pattern, trace.symbols(), anchored))
        << "pattern=" << pattern << " text=" << text
        << " anchored=" << anchored;
}

TEST(Glushkov, BasicLiteralMatch)
{
    const InputTrace t = InputTrace::fromString("xxabcxxabc");
    const auto offs = glushkovOffsets("abc", t.symbols(), false);
    EXPECT_EQ(offs, (std::vector<std::uint64_t>{4, 9}));
}

TEST(Glushkov, AnchoredMatchesOnlyAtStart)
{
    const InputTrace t = InputTrace::fromString("ababab");
    const auto anchored = glushkovOffsets("ab", t.symbols(), true);
    EXPECT_EQ(anchored, (std::vector<std::uint64_t>{1}));
    const auto anywhere = glushkovOffsets("ab", t.symbols(), false);
    EXPECT_EQ(anywhere, (std::vector<std::uint64_t>{1, 3, 5}));
}

TEST(Glushkov, HandPickedPatterns)
{
    expectAgreement("a(b|c)*d", "abcbcbd abd ad axd");
    expectAgreement("x.y", "xay xxy x y");
    expectAgreement("(ab)+", "ababab ab abab");
    expectAgreement("a{2,3}b", "aab aaab aaaab ab");
    expectAgreement("[a-c]+x", "abcx cx dx");
    expectAgreement("a|bc|def", "a bc def abcdef");
    expectAgreement("ab", "ab", true);
    expectAgreement("a+b?c*", "aaa ab ac abccc", true);
    expectAgreement("(a|ab)(c|bc)", "abc abbc ac");
}

TEST(Glushkov, NullablePatternDropsEmptyMatchButKeepsRest)
{
    // "a*" matches the empty string (dropped) and every run of a's.
    const InputTrace t = InputTrace::fromString("baab");
    const auto offs = glushkovOffsets("a*", t.symbols(), false);
    EXPECT_EQ(offs, (std::vector<std::uint64_t>{1, 2}));
}

TEST(Glushkov, RandomDifferentialSweep)
{
    Rng rng(2024);
    int checked = 0;
    for (int trial = 0; trial < 120; ++trial) {
        const std::string pattern = randomPattern(rng);
        const InputTrace text =
            randomTextTrace(rng, 160, "abcdefgh\n ");
        const bool anchored = rng.nextBool(0.3);
        ASSERT_EQ(
            glushkovOffsets(pattern, text.symbols(), anchored),
            thompsonOffsets(pattern, text.symbols(), anchored))
            << "pattern=" << pattern << " anchored=" << anchored;
        ++checked;
    }
    EXPECT_EQ(checked, 120);
}

TEST(Glushkov, StateCountEqualsPositions)
{
    // Glushkov uses exactly one state per literal position.
    Nfa nfa;
    RegexPtr ast = expandRepeats(parseRegex("(ab|cd)*ef"));
    compileRegexInto(nfa, *ast, 7, false);
    nfa.finalize();
    EXPECT_EQ(nfa.size(), 6u);
    // Reporting states carry the rule's code.
    for (const StateId q : nfa.reportingStates())
        EXPECT_EQ(nfa[q].reportCode, 7u);
}

TEST(Glushkov, RulesetCompilesEachRuleIndependently)
{
    const Nfa nfa = compileRuleset(
        {{"abc", 1}, {"abd", 2}, {"xy", 3}}, "three");
    EXPECT_EQ(nfa.size(), 8u);
    EXPECT_EQ(nfa.reportingStates().size(), 3u);
    EXPECT_EQ(nfa.startStates().size(), 3u);
}

} // namespace
} // namespace pap
