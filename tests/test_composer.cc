/**
 * @file
 * Composer tests: the truth rule (path true iff its start states are
 * all in the previous segment's true final set), report filtering per
 * (flow, component), convergence-lineage attribution, and assembly of
 * the next segment's T.
 */

#include <gtest/gtest.h>

#include "nfa/glushkov.h"
#include "pap/composer.h"

namespace pap {
namespace {

TEST(Composer, GoldenSegmentIsAllTrue)
{
    SegmentRun run;
    run.segBegin = 0;
    run.segLen = 4;
    FlowRecord rec;
    rec.id = 0;
    rec.kind = FlowKind::Golden;
    rec.cause = DeathCause::RanToEnd;
    rec.finalSnapshot = {2, 5};
    rec.reports = {{1, 2, 10}, {3, 5, 11}, {1, 2, 10}};
    run.flows.push_back(rec);

    const SegmentTruth truth = composeGolden(run);
    EXPECT_EQ(truth.finalActive, (std::vector<StateId>{2, 5}));
    EXPECT_EQ(truth.trueReports.size(), 2u); // deduplicated
    EXPECT_EQ(truth.totalEntries, 3u);
    EXPECT_EQ(truth.aliveEnumFlowsAtEnd, 0u);
}

/** Two-rule machine used by the enumeration composition tests. */
struct ComposeFixture
{
    Nfa nfa = compileRuleset({{"abz", 1}, {"cdz", 2}}, "cmp");
    CompiledNfa cnfa{nfa};
    Components comps = connectedComponents(nfa);

    // State ids: rule 1 = {0:a 1:b 2:z}, rule 2 = {3:c 4:d 5:z}.
    FlowPlan plan;
    SegmentRun run;

    ComposeFixture()
    {
        plan.paths.push_back(EnumPath{0, comps.of[1], {1}});
        plan.paths.push_back(EnumPath{3, comps.of[4], {4}});
        plan.flows.push_back(FlowSpec{0, {0, 1}, {1, 4}});

        run.segBegin = 100;
        run.segLen = 10;

        FlowRecord rec;
        rec.id = 0;
        rec.kind = FlowKind::Enum;
        rec.pathIdx = {0, 1};
        rec.cause = DeathCause::RanToEnd;
        rec.symbolsProcessed = 10;
        rec.finalSnapshot = {2, 5}; // both 'z' tails active
        rec.reports = {{105, 2, 1}, {106, 5, 2}};
        run.flows.push_back(rec);
    }
};

TEST(Composer, TruthRuleSubsetOfT)
{
    ComposeFixture f;
    // T contains state 1 (rule 1's 'b') but not 4.
    const SegmentTruth truth =
        composeEnum(f.cnfa, f.comps, f.plan, f.run, {1});
    ASSERT_EQ(truth.pathTrue.size(), 2u);
    EXPECT_TRUE(truth.pathTrue[0]);
    EXPECT_FALSE(truth.pathTrue[1]);
    ASSERT_EQ(truth.flowTrue.size(), 1u);
    EXPECT_TRUE(truth.flowTrue[0]);

    // Only rule 1's report survives the per-component filter.
    ASSERT_EQ(truth.trueReports.size(), 1u);
    EXPECT_EQ(truth.trueReports[0].code, 1u);
    EXPECT_EQ(truth.falseEntries, 1u);
    EXPECT_EQ(truth.totalEntries, 2u);

    // T_next only carries rule 1's component.
    EXPECT_EQ(truth.finalActive, (std::vector<StateId>{2}));
    EXPECT_EQ(truth.aliveEnumFlowsAtEnd, 1u);
}

TEST(Composer, EmptyTMakesEverythingFalse)
{
    ComposeFixture f;
    const SegmentTruth truth =
        composeEnum(f.cnfa, f.comps, f.plan, f.run, {});
    EXPECT_FALSE(truth.pathTrue[0]);
    EXPECT_FALSE(truth.pathTrue[1]);
    EXPECT_TRUE(truth.trueReports.empty());
    EXPECT_TRUE(truth.finalActive.empty());
    EXPECT_EQ(truth.falseEntries, 2u);
}

TEST(Composer, MultiStatePathNeedsAllStartsInT)
{
    ComposeFixture f;
    f.plan.paths[0].startStates = {1, 4}; // crosses both... same path
    const SegmentTruth partial =
        composeEnum(f.cnfa, f.comps, f.plan, f.run, {1});
    EXPECT_FALSE(partial.pathTrue[0]);
    const SegmentTruth full =
        composeEnum(f.cnfa, f.comps, f.plan, f.run, {1, 4});
    EXPECT_TRUE(full.pathTrue[0]);
}

TEST(Composer, AllInputStartsImplicitlyInT)
{
    ComposeFixture f;
    // State 0 ('a') is an AllInput start: a path containing it is
    // true even though engine snapshots never contain it.
    f.plan.paths[0].startStates = {0, 1};
    const SegmentTruth truth =
        composeEnum(f.cnfa, f.comps, f.plan, f.run, {1});
    EXPECT_TRUE(truth.pathTrue[0]);
}

TEST(Composer, ConvergedFlowInheritsSurvivorResults)
{
    ComposeFixture f;
    // Add a second flow that converged into flow 0 at local symbol 4.
    f.plan.paths.push_back(EnumPath{0, f.comps.of[1], {2}});
    f.plan.flows.push_back(FlowSpec{1, {2}, {2}});
    FlowRecord loser;
    loser.id = 1;
    loser.kind = FlowKind::Enum;
    loser.pathIdx = {2};
    loser.cause = DeathCause::Converged;
    loser.mergedInto = 0;
    loser.mergeSymbol = 4;
    loser.symbolsProcessed = 4;
    loser.reports = {{102, 2, 1}}; // emitted before merging
    f.run.flows.push_back(loser);

    // T makes ONLY the loser's path true (start state 2).
    const SegmentTruth truth =
        composeEnum(f.cnfa, f.comps, f.plan, f.run, {2});
    EXPECT_FALSE(truth.pathTrue[0]);
    EXPECT_FALSE(truth.pathTrue[1]);
    EXPECT_TRUE(truth.pathTrue[2]);

    // The loser's own pre-merge report is true; the survivor's report
    // at offset 105 (local 5, after the merge) is attributed to the
    // loser's lineage as well, so it is also true. The survivor's
    // rule-2 report stays false.
    std::vector<ReportCode> codes;
    for (const auto &e : truth.trueReports)
        codes.push_back(e.code);
    EXPECT_EQ(codes, (std::vector<ReportCode>{1, 1}));

    // T_next: survivor's final snapshot filtered to the loser's
    // component (rule 1), because only the loser's path was true.
    EXPECT_EQ(truth.finalActive, (std::vector<StateId>{2}));
}

TEST(Composer, SurvivorReportBeforeMergeIsNotAttributedToLoser)
{
    ComposeFixture f;
    f.plan.paths.push_back(EnumPath{0, f.comps.of[1], {2}});
    f.plan.flows.push_back(FlowSpec{1, {2}, {2}});
    FlowRecord loser;
    loser.id = 1;
    loser.kind = FlowKind::Enum;
    loser.pathIdx = {2};
    loser.cause = DeathCause::Converged;
    loser.mergedInto = 0;
    loser.mergeSymbol = 8; // merge AFTER the survivor's reports
    loser.symbolsProcessed = 8;
    f.run.flows.push_back(loser);

    const SegmentTruth truth =
        composeEnum(f.cnfa, f.comps, f.plan, f.run, {2});
    // Survivor's reports at local symbols 5 and 6 precede the merge:
    // the loser's truth cannot validate them.
    EXPECT_TRUE(truth.trueReports.empty());
}

TEST(Composer, AsgFlowAlwaysContributes)
{
    ComposeFixture f;
    FlowRecord asg;
    asg.id = 99;
    asg.kind = FlowKind::Asg;
    asg.cause = DeathCause::RanToEnd;
    asg.finalSnapshot = {1};
    asg.reports = {{109, 2, 1}};
    f.run.flows.push_back(asg);
    f.run.asgIndex = 1;

    const SegmentTruth truth =
        composeEnum(f.cnfa, f.comps, f.plan, f.run, {});
    // Enum flow contributes nothing; the ASG flow's report and final
    // state always do.
    ASSERT_EQ(truth.trueReports.size(), 1u);
    EXPECT_EQ(truth.trueReports[0].offset, 109u);
    EXPECT_EQ(truth.finalActive, (std::vector<StateId>{1}));
}

TEST(Composer, DeactivatedFlowContributesNothingToT)
{
    ComposeFixture f;
    f.run.flows[0].cause = DeathCause::Deactivated;
    f.run.flows[0].finalSnapshot.clear();
    f.run.flows[0].symbolsProcessed = 3;
    const SegmentTruth truth =
        composeEnum(f.cnfa, f.comps, f.plan, f.run, {1, 4});
    EXPECT_TRUE(truth.finalActive.empty());
    EXPECT_EQ(truth.aliveEnumFlowsAtEnd, 0u);
}

} // namespace
} // namespace pap
