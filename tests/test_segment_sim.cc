/**
 * @file
 * Segment simulation tests: golden segments, deactivation detection
 * (including the fine-grained checks before the first TDM step),
 * convergence merging, and the recorded flow metadata the composer
 * and timeline rely on.
 */

#include <gtest/gtest.h>

#include "engine/trace.h"
#include "nfa/glushkov.h"
#include "pap/segment_sim.h"

namespace pap {
namespace {

struct SimFixture
{
    Nfa nfa;
    CompiledNfa *cnfa = nullptr;
    EngineContext *engines = nullptr;
    Components comps;
    std::vector<StateId> asg;
    EngineScratch *scratch = nullptr;

    explicit SimFixture(const std::vector<RegexRule> &rules)
        : nfa(compileRuleset(rules, "sim"))
    {
        comps = connectedComponents(nfa);
        asg = alwaysActiveStates(nfa);
        cnfa = new CompiledNfa(nfa);
        engines = new EngineContext(*cnfa, EngineKind::Sparse);
        scratch = new EngineScratch(nfa.size());
    }

    ~SimFixture()
    {
        delete engines;
        delete cnfa;
        delete scratch;
    }
};

TEST(SegmentSim, GoldenSegmentMatchesSequentialActivity)
{
    SimFixture f({{"ab", 1}});
    const InputTrace t = InputTrace::fromString("abxab");
    const SegmentRun run = runGoldenSegment(*f.engines, t.begin(), 0,
                                            t.size(), *f.scratch);
    ASSERT_EQ(run.flows.size(), 1u);
    const FlowRecord &rec = run.flows[0];
    EXPECT_EQ(rec.kind, FlowKind::Golden);
    EXPECT_EQ(rec.cause, DeathCause::RanToEnd);
    EXPECT_EQ(rec.symbolsProcessed, t.size());
    EXPECT_EQ(rec.reports.size(), 2u);
    EXPECT_EQ(rec.reports[0].offset, 1u);
    EXPECT_EQ(rec.reports[1].offset, 4u);
}

TEST(SegmentSim, EnumFlowDeactivatesAtEarlyCheck)
{
    SimFixture f({{"abcd", 1}});
    // Seed the 'b' state; input never contains 'b', so the flow dies
    // on the first symbol and the early check (granularity 16 by
    // default) detects it within the first TDM step.
    FlowPlan plan;
    plan.paths.push_back(EnumPath{0, f.comps.of[1], {1}});
    plan.flows.push_back(FlowSpec{0, {0}, {1}});

    const std::string text(600, 'x');
    const InputTrace t = InputTrace::fromString(text);
    PapOptions opt;
    opt.tdmQuantum = 125;
    const SegmentRun run =
        runEnumSegment(*f.engines, plan, f.asg, t.begin(), 0, t.size(),
                       opt, *f.scratch);
    // flows[0] is the ASG flow (AllInput start), flows[1] the enum.
    ASSERT_EQ(run.flows.size(), 2u);
    EXPECT_EQ(run.asgIndex, 0);
    const FlowRecord &asg = run.flows[0];
    EXPECT_EQ(asg.kind, FlowKind::Asg);
    EXPECT_EQ(asg.cause, DeathCause::RanToEnd);

    const FlowRecord &rec = run.flows[1];
    EXPECT_EQ(rec.kind, FlowKind::Enum);
    EXPECT_EQ(rec.cause, DeathCause::Deactivated);
    EXPECT_EQ(rec.symbolsProcessed, 16u); // first early check
    EXPECT_TRUE(rec.finalSnapshot.empty());
}

TEST(SegmentSim, DeactivationAtRoundBoundaryAfterFirstStep)
{
    SimFixture f({{"ab", 1}});
    FlowPlan plan;
    plan.paths.push_back(EnumPath{0, f.comps.of[1], {1}});
    plan.flows.push_back(FlowSpec{0, {0}, {1}});

    // 'b' stays alive while input is "bbbb..." (state 1 self-feeds?
    // no: 'b' has no successors, it dies right away after reporting).
    // Use a machine where the seed survives past the first TDM step:
    SimFixture g({{"b*c", 2}});
    // state 0 is 'b' star (self loop), seed it.
    FlowPlan plan_g;
    plan_g.paths.push_back(EnumPath{0, g.comps.of[0], {0}});
    plan_g.flows.push_back(FlowSpec{0, {0}, {0}});
    std::string text(200, 'b');
    text += std::string(200, 'x'); // kills the star at offset 200
    const InputTrace t = InputTrace::fromString(text);
    PapOptions opt;
    opt.tdmQuantum = 50;
    const SegmentRun run =
        runEnumSegment(*g.engines, plan_g, g.asg, t.begin(), 0, t.size(),
                       opt, *g.scratch);
    const FlowRecord &rec = run.flows.back();
    EXPECT_EQ(rec.cause, DeathCause::Deactivated);
    // Dies at 201 symbols; detected at the 250 round boundary.
    EXPECT_EQ(rec.symbolsProcessed, 250u);
}

TEST(SegmentSim, ConvergedFlowsMergeAtCheckPeriod)
{
    // Two flows seeded at the two 'b' positions of "(ab|cb)x*y":
    // after one 'b' both hold {x-star, y} and must merge at the first
    // convergence check.
    SimFixture f({{"(ab|cb)x*y", 1}});
    std::vector<StateId> b_states;
    for (StateId q = 0; q < f.nfa.size(); ++q)
        if (f.nfa[q].label.test('b'))
            b_states.push_back(q);
    ASSERT_EQ(b_states.size(), 2u);

    FlowPlan plan;
    plan.paths.push_back(
        EnumPath{b_states[0], f.comps.of[b_states[0]], {b_states[0]}});
    plan.paths.push_back(
        EnumPath{b_states[1], f.comps.of[b_states[1]], {b_states[1]}});
    // Same component: two flows.
    plan.flows.push_back(FlowSpec{0, {0}, {b_states[0]}});
    plan.flows.push_back(FlowSpec{1, {1}, {b_states[1]}});

    std::string text = "b";
    text += std::string(2000, 'x');
    const InputTrace t = InputTrace::fromString(text);
    PapOptions opt;
    opt.tdmQuantum = 20;
    opt.convergenceCheckPeriod = 10;
    const SegmentRun run =
        runEnumSegment(*f.engines, plan, f.asg, t.begin(), 0, t.size(),
                       opt, *f.scratch);

    const FlowRecord *winner = nullptr, *loser = nullptr;
    for (const auto &rec : run.flows) {
        if (rec.kind != FlowKind::Enum)
            continue;
        if (rec.cause == DeathCause::Converged)
            loser = &rec;
        else
            winner = &rec;
    }
    ASSERT_NE(winner, nullptr);
    ASSERT_NE(loser, nullptr);
    EXPECT_EQ(loser->mergedInto, winner->id);
    // Convergence fires at the first check: 10 rounds x 20 symbols.
    EXPECT_EQ(loser->mergeSymbol, 200u);
    EXPECT_EQ(loser->symbolsProcessed, 200u);
    EXPECT_EQ(winner->cause, DeathCause::RanToEnd);
    EXPECT_FALSE(winner->finalSnapshot.empty());
}

TEST(SegmentSim, ConvergenceDisabledKeepsFlowsApart)
{
    SimFixture f({{"(a|b)x*y", 1}});
    StateId head_a = kInvalidState, head_b = kInvalidState;
    for (StateId q = 0; q < f.nfa.size(); ++q) {
        if (f.nfa[q].label.test('a'))
            head_a = q;
        if (f.nfa[q].label.test('b'))
            head_b = q;
    }
    FlowPlan plan;
    plan.paths.push_back(
        EnumPath{head_a, f.comps.of[head_a], {head_a}});
    plan.paths.push_back(
        EnumPath{head_b, f.comps.of[head_b], {head_b}});
    plan.flows.push_back(FlowSpec{0, {0}, {head_a}});
    plan.flows.push_back(FlowSpec{1, {1}, {head_b}});

    std::string text = "ab";
    text += std::string(500, 'x');
    const InputTrace t = InputTrace::fromString(text);
    PapOptions opt;
    opt.tdmQuantum = 20;
    opt.enableConvergenceChecks = false;
    const SegmentRun run =
        runEnumSegment(*f.engines, plan, f.asg, t.begin(), 0, t.size(),
                       opt, *f.scratch);
    for (const auto &rec : run.flows)
        EXPECT_NE(rec.cause, DeathCause::Converged);
}

TEST(SegmentSim, ReportsCarryAbsoluteOffsets)
{
    SimFixture f({{"ab", 1}});
    FlowPlan plan;
    plan.paths.push_back(EnumPath{0, f.comps.of[1], {1}});
    plan.flows.push_back(FlowSpec{0, {0}, {1}});
    const InputTrace t = InputTrace::fromString("b");
    const SegmentRun run =
        runEnumSegment(*f.engines, plan, f.asg, t.begin(), 5000, t.size(),
                       PapOptions{}, *f.scratch);
    const FlowRecord &rec = run.flows.back();
    ASSERT_EQ(rec.reports.size(), 1u);
    EXPECT_EQ(rec.reports[0].offset, 5000u);
    EXPECT_EQ(run.segBegin, 5000u);
}

} // namespace
} // namespace pap
