/**
 * @file
 * Shared helpers for tests: random automata and random traces.
 */

#ifndef PAP_TESTS_WORKLOAD_HELPERS_H
#define PAP_TESTS_WORKLOAD_HELPERS_H

#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/trace.h"
#include "nfa/glushkov.h"
#include "nfa/nfa.h"

namespace pap {

/** A trace of random symbols drawn from @p alphabet. */
inline InputTrace
randomTextTrace(Rng &rng, std::size_t len, const std::string &alphabet)
{
    std::vector<Symbol> data(len);
    for (auto &s : data)
        s = static_cast<Symbol>(static_cast<unsigned char>(
            alphabet[rng.nextBelow(alphabet.size())]));
    return InputTrace(std::move(data));
}

/** A random regex pattern over a small alphabet. */
inline std::string
randomPattern(Rng &rng)
{
    static const char *atoms[] = {"a",  "b",   "c",    "d",    "e",
                                  "f",  "g",   "h",    ".",    "[ab]",
                                  "[c-f]", "[^ab]", "(ab|cd)", "\\n"};
    static const char *quants[] = {"", "", "", "*", "+", "?", "{1,3}"};
    std::string out;
    const int parts = 2 + static_cast<int>(rng.nextBelow(6));
    for (int i = 0; i < parts; ++i) {
        out += atoms[rng.nextBelow(std::size(atoms))];
        out += quants[rng.nextBelow(std::size(quants))];
    }
    return out;
}

/** A random multi-rule automaton. */
inline Nfa
randomNfa(Rng &rng, int max_patterns)
{
    std::vector<RegexRule> rules;
    const int n = 1 + static_cast<int>(rng.nextBelow(max_patterns));
    for (int i = 0; i < n; ++i)
        rules.push_back(RegexRule{randomPattern(rng),
                                  static_cast<ReportCode>(i),
                                  rng.nextBool(0.2)});
    return compileRuleset(rules, "random");
}

} // namespace pap

#endif // PAP_TESTS_WORKLOAD_HELPERS_H
