#!/usr/bin/env bash
# Hard-crash torture of the serve daemon: repeatedly SIGKILL it with a
# keyed stream mid-flight (periodic checkpoints enabled), restart it
# on the same checkpoint directory, RESUME, and require the merged
# final reports to be byte-identical to a one-shot sequential run.
# Also covers recovery of a stream killed before its first checkpoint
# (fresh re-admit at offset 0) and recovery stats over the wire.
#
# Registered with CTest (label "serve"); $1 is papsim. Env knobs:
#   CYCLES        kill -9 / restart cycles (default 3)
#   EXTRA_FAULTS  extra --inject-faults spec for the daemon, e.g.
#                 "disconnect-client:2:0.3,slow-client:2:0.3"
set -euo pipefail

PAPSIM="$1"
CYCLES="${CYCLES:-3}"
EXTRA_FAULTS="${EXTRA_FAULTS:-}"
WORK="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT
cd "$WORK"
SOCK="$WORK/pap.sock"
CKPT="$WORK/ckpt"
mkdir "$CKPT"

cat > rules.txt <<'RULES'
ab.*cd
fgh
h[af]+g
RULES
"$PAPSIM" compile rules.txt m.nfa >/dev/null
"$PAPSIM" gentrace m.nfa t.bin 65536 --pm=0.6 --seed=9 >/dev/null
"$PAPSIM" run m.nfa t.bin --sequential --max-reports=100000 \
    | grep "^  match" > expected.txt

FAULT_FLAGS=()
if [ -n "$EXTRA_FAULTS" ]; then
    FAULT_FLAGS=(--inject-faults="$EXTRA_FAULTS" --fault-seed=29)
fi

start_daemon() {
    "$PAPSIM" serve m.nfa --socket="$SOCK" --threads=2 --chunk=2048 \
        --checkpoint-dir="$CKPT" --checkpoint-interval=2 \
        "${FAULT_FLAGS[@]}" > "daemon.$1.log" 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
        if "$PAPSIM" ctl "$SOCK" ping 2>/dev/null | grep -q PONG; then
            return 0
        fi
        sleep 0.05
    done
    echo "daemon did not come up (cycle $1)" >&2
    exit 1
}

# Poll STATS until $1 matches (daemon-side state is asynchronous).
wait_for_stat() {
    for _ in $(seq 1 100); do
        if "$PAPSIM" ctl "$SOCK" stats 2>/dev/null | grep -q "$1"; then
            return 0
        fi
        sleep 0.05
    done
    echo "daemon never reported $1" >&2
    "$PAPSIM" ctl "$SOCK" stats >&2 || true
    exit 1
}

for cycle in $(seq 1 "$CYCLES"); do
    start_daemon "$cycle"

    # Feed a cycle-dependent prefix of the trace through a fifo, wait
    # until at least one periodic checkpoint is durable, then pull the
    # plug with SIGKILL — no drain, no flush, no goodbye.
    PREFIX=$((16384 + (cycle * 12289) % 32768))
    mkfifo "feed.$cycle.pipe"
    "$PAPSIM" stream "$SOCK" alice - --key=k < "feed.$cycle.pipe" \
        > "half.$cycle.out" 2>&1 &
    CLIENT_PID=$!
    exec 8> "feed.$cycle.pipe"
    head -c "$PREFIX" t.bin >&8
    wait_for_stat "periodic_ckpts=[1-9]"
    kill -9 "$DAEMON_PID"
    wait "$DAEMON_PID" 2>/dev/null || true
    DAEMON_PID=""
    exec 8>&-
    wait "$CLIENT_PID" 2>/dev/null || true
    rm -f "$SOCK" "feed.$cycle.pipe"

    # Restart on the same directory: the manifest must name the
    # session and RESUME must continue it from a nonzero offset with
    # replay bounded by the checkpoint interval.
    start_daemon "r$cycle"
    wait_for_stat "resumable=[1-9]"
    "$PAPSIM" stream "$SOCK" alice t.bin --key=k --resume \
        --max-reports=100000 > "resumed.$cycle.txt"
    grep -q "resumed from checkpoint: [1-9]" "resumed.$cycle.txt"
    grep "^  match" "resumed.$cycle.txt" | diff - expected.txt
    wait_for_stat "recovered_sessions=1"

    kill -TERM "$DAEMON_PID"
    wait "$DAEMON_PID"
    DAEMON_PID=""
done

# Kill before the first checkpoint: recovery falls back to a fresh
# re-admit at offset 0 and the re-fed stream is still exact.
start_daemon early
mkfifo early.pipe
"$PAPSIM" stream "$SOCK" alice - --key=early < early.pipe \
    > early.out 2>&1 &
CLIENT_PID=$!
exec 8> early.pipe
head -c 1024 t.bin >&8
wait_for_stat "admitted=1"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
exec 8>&-
wait "$CLIENT_PID" 2>/dev/null || true
rm -f "$SOCK" early.pipe

start_daemon rearly
"$PAPSIM" stream "$SOCK" alice t.bin --key=early --resume \
    --max-reports=100000 > early_resumed.txt
grep "^  match" early_resumed.txt | diff - expected.txt
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""

echo "serve crash smoke ok ($CYCLES cycles)"
