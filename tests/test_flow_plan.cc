/**
 * @file
 * Flow-plan construction tests: enumeration-path building per parent,
 * ASG stripping, the vertical-line packing invariant (at most one
 * path per connected component per flow), path coverage of the range,
 * deduplication, and the Figure-9 statistics under each ablation.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "nfa/glushkov.h"
#include "pap/flow_plan.h"
#include "workload_helpers.h"

namespace pap {
namespace {

struct PlanFixture
{
    Nfa nfa;
    Components comps;
    std::vector<StateId> asg;

    explicit PlanFixture(const std::vector<RegexRule> &rules)
        : nfa(compileRuleset(rules, "plan"))
    {
        comps = connectedComponents(nfa);
        asg = alwaysActiveStates(nfa);
    }

    FlowPlan
    plan(Symbol boundary, const PapOptions &opt = {}) const
    {
        return buildFlowPlan(nfa, comps, asg, boundary, opt);
    }
};

TEST(FlowPlan, PathsPerParentAndSeeds)
{
    // "ab" and "ac" merged? No prefix merging here: two rules, two
    // components; boundary 'a' has two parents (the two heads).
    const PlanFixture f({{"ab", 1}, {"ac", 2}});
    const FlowPlan plan = f.plan('a');
    ASSERT_EQ(plan.paths.size(), 2u);
    for (const auto &path : plan.paths) {
        EXPECT_NE(path.parent, kInvalidState);
        EXPECT_EQ(path.startStates.size(), 1u);
    }
    // Different components -> one flow holds both paths.
    ASSERT_EQ(plan.flows.size(), 1u);
    EXPECT_EQ(plan.flows[0].pathIdx.size(), 2u);
    EXPECT_EQ(plan.flows[0].seed.size(), 2u);
    EXPECT_EQ(plan.flowsInRange, 2u);
    EXPECT_EQ(plan.flowsAfterCc, 1u);
    EXPECT_EQ(plan.flowsAfterParent, 1u);
}

TEST(FlowPlan, AtMostOnePathPerComponentPerFlow)
{
    Rng rng(6);
    for (int trial = 0; trial < 15; ++trial) {
        const Nfa nfa = randomNfa(rng, 8);
        const Components comps = connectedComponents(nfa);
        const auto asg = alwaysActiveStates(nfa);
        const FlowPlan plan = buildFlowPlan(
            nfa, comps, asg,
            static_cast<Symbol>('a' + rng.nextBelow(6)), {});
        for (const auto &flow : plan.flows) {
            std::set<ComponentId> seen;
            for (const auto idx : flow.pathIdx)
                EXPECT_TRUE(seen.insert(plan.paths[idx].cc).second)
                    << "two paths of one component share a flow";
            EXPECT_FALSE(flow.seed.empty());
            EXPECT_TRUE(std::is_sorted(flow.seed.begin(),
                                       flow.seed.end()));
        }
    }
}

TEST(FlowPlan, PathsCoverRangeMinusAsg)
{
    // Union of path start states == range \ ASG (coverage is what
    // makes the truth rule exact).
    Rng rng(7);
    for (int trial = 0; trial < 15; ++trial) {
        const Nfa nfa = randomNfa(rng, 8);
        const Components comps = connectedComponents(nfa);
        const auto asg = alwaysActiveStates(nfa);
        const RangeAnalysis ranges(nfa);
        const Symbol s = static_cast<Symbol>('a' + rng.nextBelow(6));
        const FlowPlan plan = buildFlowPlan(nfa, comps, asg, s, {});

        std::set<StateId> covered;
        for (const auto &path : plan.paths)
            covered.insert(path.startStates.begin(),
                           path.startStates.end());

        std::set<StateId> expect;
        const std::set<StateId> asg_set(asg.begin(), asg.end());
        for (const StateId q : ranges.computeRange(s))
            if (!asg_set.contains(q))
                expect.insert(q);
        EXPECT_EQ(covered, expect);
        EXPECT_EQ(plan.flowsInRange, expect.size());
    }
}

TEST(FlowPlan, AsgStatesAreStripped)
{
    // ".*abc" (anchored star head): the star state and 'a' are always
    // active and must not appear in any path.
    Nfa nfa;
    RegexPtr ast = expandRepeats(parseRegex(".*abc"));
    compileRegexInto(nfa, *ast, 1, true);
    nfa.finalize();
    const Components comps = connectedComponents(nfa);
    const auto asg = alwaysActiveStates(nfa);
    ASSERT_EQ(asg.size(), 2u);
    const FlowPlan plan = buildFlowPlan(nfa, comps, asg, 'a', {});
    for (const auto &path : plan.paths)
        for (const StateId q : path.startStates)
            EXPECT_FALSE(std::binary_search(asg.begin(), asg.end(), q));
}

TEST(FlowPlan, ParentMergeReducesPathCount)
{
    // One parent with three successors: parent merging gives one
    // path; disabled it gives three.
    Nfa nfa;
    const auto p = nfa.addState(CharClass::single('x'),
                                StartType::AllInput);
    for (int i = 0; i < 3; ++i) {
        const auto c = nfa.addState(CharClass::single('y'),
                                    StartType::None, true,
                                    static_cast<ReportCode>(i));
        nfa.addEdge(p, c);
    }
    nfa.finalize();
    const Components comps = connectedComponents(nfa);
    const auto asg = alwaysActiveStates(nfa);

    PapOptions with;
    const FlowPlan merged = buildFlowPlan(nfa, comps, asg, 'x', with);
    EXPECT_EQ(merged.paths.size(), 1u);
    EXPECT_EQ(merged.paths[0].startStates.size(), 3u);
    EXPECT_EQ(merged.flowsAfterParent, 1u);

    PapOptions without;
    without.enableParentMerging = false;
    const FlowPlan split = buildFlowPlan(nfa, comps, asg, 'x', without);
    EXPECT_EQ(split.paths.size(), 3u);
    // Same component: three flows.
    EXPECT_EQ(split.flowsAfterParent, 3u);
}

TEST(FlowPlan, CcMergingDisabledGivesOneFlowPerPath)
{
    const PlanFixture f({{"ab", 1}, {"cb", 2}, {"db", 3}});
    PapOptions opt;
    opt.enableCcMerging = false;
    const FlowPlan plan = f.plan('b', opt);
    // 'b' labels the tails (no successors) -> no parents except heads
    // matching 'b'? Heads are labeled a/c/d, so boundary 'a' instead:
    const FlowPlan plan_a = f.plan('a', opt);
    EXPECT_EQ(plan_a.flows.size(), plan_a.paths.size());
    EXPECT_EQ(plan_a.flowsAfterCc, plan_a.flowsInRange);
}

TEST(FlowPlan, DuplicateParentSuccessorsDeduplicate)
{
    // Two parents in one component with identical successor sets
    // collapse into one path.
    Nfa nfa;
    const auto p1 = nfa.addState(CharClass::single('x'),
                                 StartType::AllInput);
    const auto p2 = nfa.addState(CharClass::single('x'));
    const auto c = nfa.addState(CharClass::single('y'),
                                StartType::None, true, 1);
    nfa.addEdge(p1, c);
    nfa.addEdge(p2, c);
    nfa.addEdge(p1, p2); // keep everything one component
    nfa.finalize();
    const Components comps = connectedComponents(nfa);
    ASSERT_EQ(comps.count, 1u);
    const FlowPlan plan =
        buildFlowPlan(nfa, comps, alwaysActiveStates(nfa), 'x', {});
    // p1 -> {p2, c}, p2 -> {c}: two distinct paths; but boundary 'y'
    // has no parents with successors.
    EXPECT_EQ(plan.paths.size(), 2u);
    const FlowPlan plan_y =
        buildFlowPlan(nfa, comps, alwaysActiveStates(nfa), 'y', {});
    EXPECT_TRUE(plan_y.paths.empty());
    EXPECT_TRUE(plan_y.flows.empty());
}

TEST(FlowPlan, FlowLimitEnforcedViaOptions)
{
    // maxFlowsPerSegment is a fatal guard; just confirm a plan under
    // the limit builds (the fatal path exits the process and is
    // covered by a death test only in debug environments).
    const PlanFixture f({{"ab", 1}});
    PapOptions opt;
    opt.maxFlowsPerSegment = 8;
    const FlowPlan plan = f.plan('a', opt);
    EXPECT_LE(plan.flows.size(), 8u);
}

} // namespace
} // namespace pap
