#!/usr/bin/env bash
# End-to-end smoke test of the hardened-execution CLI surface:
# --threads / PAP_THREADS validation, worker-fault injection,
# checkpoint kill/resume equivalence, and the metrics JSON echo.
# Registered with CTest (label "robust"); $1 is the papsim binary.
set -euo pipefail

PAPSIM="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

cat > rules.txt <<'RULES'
abra
cad(ab)+ra
x[yz]{2,3}q
RULES

"$PAPSIM" compile rules.txt m.nfa --prefix-merge >/dev/null
"$PAPSIM" gentrace m.nfa t.bin 32768 --pm=0.6 --seed=3 >/dev/null

# --- Thread plumbing -------------------------------------------------

# The same run is byte-identical for any host thread count.
"$PAPSIM" run m.nfa t.bin --ranks=4 --verbose > run_t1.txt
"$PAPSIM" run m.nfa t.bin --ranks=4 --verbose --threads=2 > run_t2.txt
"$PAPSIM" run m.nfa t.bin --ranks=4 --verbose --threads=8 > run_t8.txt
grep -q "exec: 2 host threads" run_t2.txt
grep -q "exec: 8 host threads" run_t8.txt
# Strip the exec and pipeline summaries (the only lines allowed to
# differ: thread census and wall-clock timings) and compare.
grep -v "^  exec:\|^  pipeline:" run_t1.txt > run_t1.stripped
grep -v "^  exec:\|^  pipeline:" run_t2.txt | cmp - run_t1.stripped
grep -v "^  exec:\|^  pipeline:" run_t8.txt | cmp - run_t1.stripped

# PAP_THREADS sets the default; the flag wins over it.
PAP_THREADS=2 "$PAPSIM" run m.nfa t.bin --ranks=4 \
    | grep -q "exec: 2 host threads"
PAP_THREADS=2 "$PAPSIM" run m.nfa t.bin --ranks=4 --threads=4 \
    | grep -q "exec: 4 host threads"
# --threads=0 resolves to at least one hardware thread.
"$PAPSIM" run m.nfa t.bin --ranks=4 --threads=0 >/dev/null

# Validation: junk values are typed CLI errors, not crashes.
if "$PAPSIM" run m.nfa t.bin --threads=nope 2>/dev/null; then exit 1; fi
("$PAPSIM" run m.nfa t.bin --threads=nope 2>&1 || true) \
    | grep -q "papsim: error: --threads"
if PAP_THREADS=wat "$PAPSIM" run m.nfa t.bin 2>/dev/null; then exit 1; fi
(PAP_THREADS=wat "$PAPSIM" run m.nfa t.bin 2>&1 || true) \
    | grep -q "papsim: error: PAP_THREADS"
if "$PAPSIM" run m.nfa t.bin --max-retries=x 2>/dev/null; then exit 1; fi
if "$PAPSIM" run m.nfa t.bin --deadline-ms=x 2>/dev/null; then exit 1; fi
if "$PAPSIM" run m.nfa t.bin --stop-after-segment=x 2>/dev/null; then
    exit 1
fi

# The thread count is echoed into the metrics JSON.
"$PAPSIM" run m.nfa t.bin --ranks=4 --threads=2 \
    --metrics-json=metrics.json >/dev/null
grep -q '"exec.threads_used"' metrics.json
grep -q '"exec.pool.tasks"' metrics.json

# --- Worker faults ---------------------------------------------------

# Malformed specs (including worker kinds) are rejected with a typed
# message; the new kind names parse.
for BAD in "stall-worker:x" "crash-worker:1:2.0" "corrupt-sv:0" \
           "walk-worker" ""; do
    if "$PAPSIM" run m.nfa t.bin --inject-faults="$BAD" 2>/dev/null
    then
        echo "accepted bad spec '$BAD'" >&2
        exit 1
    fi
    ("$PAPSIM" run m.nfa t.bin --inject-faults="$BAD" 2>&1 || true) \
        | grep -q "papsim: error:"
done

# A transient crash fault heals by retry: same matches as the clean
# run and the run still verifies.
CLEAN=$("$PAPSIM" run m.nfa t.bin --ranks=4 | grep "PAP\[")
CLEAN_MATCHES=$(echo "$CLEAN" \
    | sed 's/PAP\[[a-z0-9+]*\]: \([0-9]*\) matches.*/\1/')
FAULTY=$("$PAPSIM" run m.nfa t.bin --ranks=4 --threads=2 \
    --inject-faults=crash-worker:1 --fault-seed=7 2>/dev/null)
echo "$FAULTY" | grep -q "(verified)"
echo "$FAULTY" | grep -q "PAP\[[a-z0-9+]*\]: $CLEAN_MATCHES matches"
echo "$FAULTY" | grep -q "segments retried"

# A persistent stall exhausts its retries, falls back to the
# per-segment oracle, and still reproduces the clean matches.
STALLED=$("$PAPSIM" run m.nfa t.bin --ranks=4 --threads=2 \
    --deadline-ms=5 --max-retries=1 \
    --inject-faults=stall-worker:8 --fault-seed=7 2>/dev/null)
echo "$STALLED" | grep -q "PAP\[[a-z0-9+]*\]: $CLEAN_MATCHES matches"
echo "$STALLED" | grep -q "recovered"

# --- Checkpoint / resume --------------------------------------------

# Wall-clock pipeline timings are the one nondeterministic verbose
# line; strip them from every byte comparison below.
FULL=$("$PAPSIM" run m.nfa t.bin --ranks=4 --verbose \
    | grep -v "^  pipeline:")

# Kill the run after composing segment 1: non-zero exit, checkpoint
# left on disk.
if "$PAPSIM" run m.nfa t.bin --ranks=4 --checkpoint=run.ckpt \
    --stop-after-segment=1 >/dev/null 2>&1; then
    echo "stop-after-segment did not stop" >&2
    exit 1
fi
test -f run.ckpt

# Resume: byte-identical output (minus the resume banner), checkpoint
# cleaned up after the completed run.
"$PAPSIM" run m.nfa t.bin --ranks=4 --verbose --checkpoint=run.ckpt \
    > resumed.txt
grep -q "resumed from checkpoint: 2 segments" resumed.txt
grep -v "^  resumed from checkpoint:\|^  pipeline:" resumed.txt \
    | diff - <(echo "$FULL")
test ! -f run.ckpt

# A corrupt checkpoint is ignored (fresh run, same result).
if "$PAPSIM" run m.nfa t.bin --ranks=4 --checkpoint=run.ckpt \
    --stop-after-segment=0 >/dev/null 2>&1; then exit 1; fi
printf 'garbage' | dd of=run.ckpt bs=1 seek=16 conv=notrunc \
    2>/dev/null
"$PAPSIM" run m.nfa t.bin --ranks=4 --verbose --checkpoint=run.ckpt \
    2>/dev/null > fresh.txt
if grep -q "resumed from checkpoint" fresh.txt; then exit 1; fi
grep -v "^  resumed from checkpoint:\|^  pipeline:" fresh.txt \
    | diff - <(echo "$FULL")

echo "robust smoke ok"
