/**
 * @file
 * Classical NFA tests: epsilon closures, subset simulation, the
 * Thompson construction, and the homogeneous conversion (whose output
 * must report exactly where the classical simulation accepts).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/reference_engine.h"
#include "nfa/classical.h"
#include "workload_helpers.h"

namespace pap {
namespace {

TEST(Classical, EpsilonClosure)
{
    ClassicalNfa nfa;
    const auto a = nfa.addState();
    const auto b = nfa.addState();
    const auto c = nfa.addState();
    const auto d = nfa.addState();
    nfa.addEpsilon(a, b);
    nfa.addEpsilon(b, c);
    nfa.addEpsilon(c, a); // cycle
    const auto closure = nfa.epsilonClosure({a});
    EXPECT_EQ(closure, (std::vector<std::uint32_t>{a, b, c}));
    const auto solo = nfa.epsilonClosure({d});
    EXPECT_EQ(solo, (std::vector<std::uint32_t>{d}));
}

TEST(Classical, SimulateSimpleChain)
{
    ClassicalNfa nfa;
    const auto s0 = nfa.addState();
    const auto s1 = nfa.addState();
    const auto s2 = nfa.addState();
    nfa.setStart(s0);
    nfa.addEdge(s0, s1, CharClass::single('a'));
    nfa.addEdge(s1, s2, CharClass::single('b'));
    nfa.setAccept(s2, 9);

    const InputTrace t = InputTrace::fromString("abab");
    const auto rep = nfa.simulate(t.symbols(), /*anywhere=*/true);
    ASSERT_EQ(rep.size(), 4u);
    EXPECT_TRUE(rep[0].empty());
    EXPECT_EQ(rep[1], (std::vector<ReportCode>{9}));
    EXPECT_TRUE(rep[2].empty());
    EXPECT_EQ(rep[3], (std::vector<ReportCode>{9}));
}

TEST(Classical, AnchoredVsAnywhere)
{
    RegexPtr ast = expandRepeats(parseRegex("ab"));
    const ClassicalNfa nfa = thompson(*ast, 1);
    const InputTrace t = InputTrace::fromString("xabab");
    const auto anywhere = nfa.simulate(t.symbols(), true);
    const auto anchored = nfa.simulate(t.symbols(), false);
    EXPECT_FALSE(anywhere[2].empty());
    EXPECT_FALSE(anywhere[4].empty());
    for (const auto &r : anchored)
        EXPECT_TRUE(r.empty()); // "xabab" does not start with "ab"
}

TEST(Classical, HomogeneousConversionAgreesWithSimulation)
{
    Rng rng(31337);
    for (int trial = 0; trial < 60; ++trial) {
        const std::string pattern = randomPattern(rng);
        RegexPtr ast = expandRepeats(parseRegex(pattern));
        const ClassicalNfa cn = thompson(*ast, 3);
        const bool anywhere = rng.nextBool(0.5);

        const Nfa hom = cn.toHomogeneous("hom", anywhere);
        const InputTrace text =
            randomTextTrace(rng, 120, "abcdefgh ");

        const auto classical = cn.simulate(text.symbols(), anywhere);
        const ReferenceResult ref = referenceRun(hom, text.symbols());

        std::vector<std::uint64_t> expect, got;
        for (std::size_t i = 0; i < classical.size(); ++i)
            if (!classical[i].empty())
                expect.push_back(i);
        for (const auto &e : ref.reports)
            got.push_back(e.offset);
        std::sort(got.begin(), got.end());
        got.erase(std::unique(got.begin(), got.end()), got.end());
        ASSERT_EQ(got, expect) << "pattern=" << pattern;
    }
}

TEST(Classical, HomogeneousStatesArePerTargetLabelPairs)
{
    // Two edges into the same state with the same label share one
    // homogeneous state; a different label forces another.
    ClassicalNfa nfa;
    const auto s0 = nfa.addState();
    const auto s1 = nfa.addState();
    const auto s2 = nfa.addState();
    nfa.setStart(s0);
    nfa.addEdge(s0, s2, CharClass::single('a'));
    nfa.addEdge(s1, s2, CharClass::single('a'));
    nfa.addEdge(s0, s2, CharClass::single('b'));
    nfa.setAccept(s2, 1);
    const Nfa hom = nfa.toHomogeneous("hom", true);
    EXPECT_EQ(hom.size(), 2u); // (s2,'a') and (s2,'b')
}

} // namespace
} // namespace pap
