/**
 * @file
 * Benchmark-level integration tests (TEST_P over the full Table-1
 * registry): every synthetic benchmark runs the complete PAP pipeline
 * on a short trace and must verify against its sequential execution,
 * never regress below 1x, and respect its ideal bound. This covers
 * the real automata shapes (dense meshes, star gaps, distance grids,
 * byte signatures) that the random-NFA fuzzing cannot reach.
 */

#include <gtest/gtest.h>

#include "ap/ap_config.h"
#include "pap/runner.h"
#include "pap/speculative.h"
#include "workloads/benchmarks.h"

namespace pap {
namespace {

class BenchmarkPipeline
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(BenchmarkPipeline, PapVerifiesOnShortTrace)
{
    const BenchmarkInfo &info = benchmarkInfo(GetParam());
    const Nfa nfa = buildBenchmark(info.name);
    const InputTrace input =
        buildBenchmarkTrace(nfa, info.name, 8192, /*seed=*/77);

    PapOptions opt;
    opt.routingMinHalfCores = info.paper.halfCores;
    const PapResult r = runPap(nfa, input, ApConfig::d480(1), opt);
    EXPECT_TRUE(r.verified);
    EXPECT_GE(r.speedup, 1.0);
    EXPECT_LE(r.speedup, static_cast<double>(r.idealSpeedup) + 1e-9);
    EXPECT_GE(r.reportInflation, 1.0 - 1e-9);
}

TEST_P(BenchmarkPipeline, SpeculationVerifiesOnShortTrace)
{
    const BenchmarkInfo &info = benchmarkInfo(GetParam());
    const Nfa nfa = buildBenchmark(info.name);
    const InputTrace input =
        buildBenchmarkTrace(nfa, info.name, 8192, /*seed=*/78);

    SpeculationOptions opt;
    opt.warmupWindow = 128;
    opt.routingMinHalfCores = info.paper.halfCores;
    const SpeculationResult r =
        runSpeculative(nfa, input, ApConfig::d480(1), opt);
    EXPECT_TRUE(r.verified);
    EXPECT_GE(r.speedup, 1.0);
}

std::vector<const char *>
allBenchmarkNames()
{
    std::vector<const char *> names;
    for (const auto &info : benchmarkRegistry())
        names.push_back(info.name.c_str());
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, BenchmarkPipeline, ::testing::ValuesIn(allBenchmarkNames()),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

} // namespace
} // namespace pap
