/**
 * @file
 * Tests for the RNG, numeric helpers, counters, and table formatting.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace pap {
namespace {

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const auto x = a.next();
        EXPECT_EQ(x, b.next());
        (void)c.next();
    }
    Rng a2(42), c2(43);
    EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, NextBelowInBounds)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(Rng, NextInRangeInclusive)
{
    Rng rng(2);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextInRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo && saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliRoughlyCalibrated)
{
    Rng rng(4);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(5);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
    std::vector<int> orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Stats, MeanGeomeanMinMax)
{
    const std::vector<double> xs = {1.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(stats::mean(xs), 7.0 / 3.0);
    EXPECT_NEAR(stats::geomean(xs), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats::minOf(xs), 1.0);
    EXPECT_DOUBLE_EQ(stats::maxOf(xs), 4.0);
    EXPECT_DOUBLE_EQ(stats::mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stats::geomean({}), 0.0);
}

TEST(Stats, Percentile)
{
    const std::vector<double> xs = {10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 0), 10.0);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 100), 40.0);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 50), 25.0);
}

TEST(CounterSet, AddGetMerge)
{
    CounterSet a;
    a.add("x");
    a.add("x", 4);
    a.setValue("y", 7);
    EXPECT_EQ(a.get("x"), 5u);
    EXPECT_EQ(a.get("y"), 7u);
    EXPECT_EQ(a.get("missing"), 0u);

    CounterSet b;
    b.add("x", 10);
    b.add("z");
    a.merge(b);
    EXPECT_EQ(a.get("x"), 15u);
    EXPECT_EQ(a.get("z"), 1u);
    EXPECT_NE(a.toString().find("x = 15"), std::string::npos);
}

TEST(Table, AlignsColumnsAndCountsRows)
{
    Table t({"Name", "Value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "12345"});
    EXPECT_EQ(t.rowCount(), 2u);
    const std::string s = t.toString();
    EXPECT_NE(s.find("Name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, Formatting)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtCount(0), "0");
    EXPECT_EQ(fmtCount(999), "999");
    EXPECT_EQ(fmtCount(1000), "1,000");
    EXPECT_EQ(fmtCount(1234567), "1,234,567");
}

} // namespace
} // namespace pap
