#!/usr/bin/env bash
# End-to-end smoke test of the papsim CLI: compile -> analyze ->
# convert (both formats) -> gentrace -> run (sequential, PAP,
# speculative). Registered with CTest; $1 is the papsim binary.
set -euo pipefail

PAPSIM="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

cat > rules.txt <<'RULES'
# smoke rules
abra
cad(ab)+ra
x[yz]{2,3}q
RULES

"$PAPSIM" compile rules.txt m.nfa --prefix-merge | grep -q "compiled 3 rules"
"$PAPSIM" analyze m.nfa | grep -q "components:"
"$PAPSIM" convert m.nfa m.anml | grep -q "converted"
grep -q "<anml-network" m.anml
"$PAPSIM" convert m.anml m2.nfa | grep -q "converted"
cmp m.nfa m2.nfa

"$PAPSIM" gentrace m.anml t.bin 32768 --pm=0.6 --seed=3 \
    | grep -q "wrote 32768 symbols"

"$PAPSIM" run m.nfa t.bin --sequential | grep -q "sequential:"
"$PAPSIM" run m.nfa t.bin --ranks=4 --verbose | grep -q "(verified)"
"$PAPSIM" run m.anml t.bin --spec=128 | grep -q "speculative:"

"$PAPSIM" bench Bro217 | grep -q "Bro217:"
test -f Bro217.nfa

# Error paths exit non-zero.
if "$PAPSIM" run missing.nfa t.bin 2>/dev/null; then exit 1; fi
if "$PAPSIM" bogus 2>/dev/null; then exit 1; fi

echo "cli smoke ok"
