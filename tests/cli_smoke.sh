#!/usr/bin/env bash
# End-to-end smoke test of the papsim CLI: compile -> analyze ->
# convert (both formats) -> gentrace -> run (sequential, PAP,
# speculative). Registered with CTest; $1 is the papsim binary.
set -euo pipefail

PAPSIM="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

cat > rules.txt <<'RULES'
# smoke rules
abra
cad(ab)+ra
x[yz]{2,3}q
RULES

"$PAPSIM" compile rules.txt m.nfa --prefix-merge | grep -q "compiled 3 rules"
"$PAPSIM" analyze m.nfa | grep -q "components:"
"$PAPSIM" convert m.nfa m.anml | grep -q "converted"
grep -q "<anml-network" m.anml
"$PAPSIM" convert m.anml m2.nfa | grep -q "converted"
cmp m.nfa m2.nfa

"$PAPSIM" gentrace m.anml t.bin 32768 --pm=0.6 --seed=3 \
    | grep -q "wrote 32768 symbols"

"$PAPSIM" run m.nfa t.bin --sequential | grep -q "sequential\["
"$PAPSIM" run m.nfa t.bin --ranks=4 --verbose | grep -q "(verified)"
"$PAPSIM" run m.anml t.bin --spec=128 | grep -q "speculative\["

# Engine backends: all run verified and agree symbol for symbol. The
# tag carries the dispatched SIMD level (e.g. dense+avx2), so match
# the backend prefix and strip the whole bracket before comparing.
SPARSE=$("$PAPSIM" run m.nfa t.bin --ranks=4 --engine=sparse)
DENSE=$("$PAPSIM" run m.nfa t.bin --ranks=4 --engine=dense)
HYBRID=$("$PAPSIM" run m.nfa t.bin --ranks=4 --engine=hybrid)
SCALAR=$(PAP_SIMD=off "$PAPSIM" run m.nfa t.bin --ranks=4 \
    --engine=dense)
echo "$SPARSE" | grep -q "PAP\[sparse\]"
echo "$DENSE" | grep -q "PAP\[dense"
echo "$HYBRID" | grep -q "PAP\[hybrid"
echo "$SCALAR" | grep -q "PAP\[dense\]"
strip_tag() { sed 's/\[[a-z0-9+]*\]//'; }
test "$(echo "$SPARSE" | strip_tag)" = "$(echo "$DENSE" | strip_tag)"
test "$(echo "$SPARSE" | strip_tag)" = "$(echo "$HYBRID" | strip_tag)"
test "$(echo "$SPARSE" | strip_tag)" = "$(echo "$SCALAR" | strip_tag)"
PAP_ENGINE=dense "$PAPSIM" run m.nfa t.bin --ranks=4 \
    | grep -q "PAP\[dense"
if PAP_SIMD=bogus "$PAPSIM" run m.nfa t.bin --ranks=4 2>/dev/null; then
    exit 1
fi
(PAP_SIMD=bogus "$PAPSIM" run m.nfa t.bin --ranks=4 2>&1 || true) \
    | grep -q "InvalidInput"

# Fault injection: deterministic, detected, recovered, same matches.
CLEAN=$("$PAPSIM" run m.nfa t.bin --ranks=4 | grep "PAP\[")
FAULTY=$("$PAPSIM" run m.nfa t.bin --ranks=4 \
    --inject-faults=all:16 --fault-seed=7 2>/dev/null)
echo "$FAULTY" | grep -q "(recovered)"
echo "$FAULTY" | grep -q "detected=80 recovered=80"
CLEAN_MATCHES=$(echo "$CLEAN" \
    | sed 's/PAP\[[a-z0-9+]*\]: \([0-9]*\) matches.*/\1/')
echo "$FAULTY" | grep -q "PAP\[[a-z0-9+]*\]: $CLEAN_MATCHES matches"
# Overflow policies parse and run.
"$PAPSIM" run m.nfa t.bin --ranks=4 --overflow=batch \
    | grep -q "(verified)"

"$PAPSIM" bench Bro217 | grep -q "Bro217:"
test -f Bro217.nfa

# Error paths exit non-zero with a clear message.
if "$PAPSIM" run missing.nfa t.bin 2>/dev/null; then exit 1; fi
if "$PAPSIM" bogus 2>/dev/null; then exit 1; fi
("$PAPSIM" run missing.nfa t.bin 2>&1 || true) \
    | grep -q "papsim: error:"
: > empty.bin
if "$PAPSIM" run m.nfa empty.bin 2>/dev/null; then exit 1; fi
if "$PAPSIM" run m.nfa t.bin --ranks=zero 2>/dev/null; then exit 1; fi
if "$PAPSIM" run m.nfa t.bin --inject-faults=bogus 2>/dev/null; then
    exit 1
fi
if "$PAPSIM" run m.nfa t.bin --overflow=wat 2>/dev/null; then exit 1; fi
if "$PAPSIM" run m.nfa t.bin --engine=bogus 2>/dev/null; then exit 1; fi
("$PAPSIM" run m.nfa t.bin --engine=bogus 2>&1 || true) \
    | grep -q "InvalidInput"
printf '# nothing\n' > empty_rules.txt
if "$PAPSIM" compile empty_rules.txt e.nfa 2>/dev/null; then exit 1; fi

echo "cli smoke ok"
