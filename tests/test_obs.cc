/**
 * @file
 * Tests for the observability layer: histogram percentile agreement
 * with stats::percentile, trace JSON syntax and span nesting, registry
 * thread safety, the shared counter-merge path, and the
 * zero-allocation guarantee of disabled tracing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <new>
#include <thread>
#include <vector>

#include "ap/ap_config.h"
#include "common/rng.h"
#include "common/stats.h"
#include "engine/trace.h"
#include "nfa/glushkov.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "pap/runner.h"
#include "workload_helpers.h"

// Global allocation counter so tests can assert that disabled tracing
// never touches the heap. Counting relaxed is fine: the tests that
// read it are single-threaded.
namespace {
std::atomic<std::uint64_t> gAllocations{0};
} // namespace

void *
operator new(std::size_t size)
{
    gAllocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    gAllocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace pap {
namespace {

// --- Histograms ----------------------------------------------------

TEST(ObsHistogram, PercentilesTrackExactStats)
{
    Rng rng(7);
    obs::Histogram hist;
    std::vector<double> xs;
    for (int i = 0; i < 5000; ++i) {
        // Log-uniform over ~6 decades: stresses many octaves.
        const double v = std::pow(10.0, rng.nextDouble() * 6.0 - 2.0);
        xs.push_back(v);
        hist.record(v);
    }
    for (const double pct : {1.0, 25.0, 50.0, 90.0, 95.0, 99.0}) {
        const double exact = stats::percentile(xs, pct);
        const double approx = hist.percentile(pct);
        EXPECT_NEAR(approx, exact, exact * 0.05)
            << "pct " << pct;
    }
    const obs::HistogramSnapshot s = hist.snapshot();
    EXPECT_EQ(s.count, xs.size());
    EXPECT_DOUBLE_EQ(s.min, stats::minOf(xs));
    EXPECT_DOUBLE_EQ(s.max, stats::maxOf(xs));
    EXPECT_NEAR(s.mean, stats::mean(xs), 1e-9);
}

TEST(ObsHistogram, EdgeValuesAndClamping)
{
    obs::Histogram hist;
    EXPECT_DOUBLE_EQ(hist.percentile(50), 0.0); // empty

    hist.record(0.0);
    hist.record(-3.0);
    hist.record(42.0);
    const obs::HistogramSnapshot s = hist.snapshot();
    EXPECT_EQ(s.count, 3u);
    EXPECT_DOUBLE_EQ(s.min, -3.0);
    EXPECT_DOUBLE_EQ(s.max, 42.0);

    // Out-of-range percentiles clamp exactly like stats::percentile.
    EXPECT_DOUBLE_EQ(hist.percentile(-50), hist.percentile(0));
    EXPECT_DOUBLE_EQ(hist.percentile(250), hist.percentile(100));
    EXPECT_DOUBLE_EQ(hist.percentile(100), 42.0);
}

TEST(ObsHistogram, MergeMatchesCombinedRecording)
{
    Rng rng(8);
    obs::Histogram a, b, both;
    for (int i = 0; i < 1000; ++i) {
        const double va = rng.nextDouble() * 100.0;
        const double vb = rng.nextDouble() * 1000.0;
        a.record(va);
        b.record(vb);
        both.record(va);
        both.record(vb);
    }
    a.merge(b);
    const obs::HistogramSnapshot sa = a.snapshot();
    const obs::HistogramSnapshot sb = both.snapshot();
    EXPECT_EQ(sa.count, sb.count);
    EXPECT_DOUBLE_EQ(sa.min, sb.min);
    EXPECT_DOUBLE_EQ(sa.max, sb.max);
    // Sum differs only by fp addition order between the two paths.
    EXPECT_NEAR(sa.sum, sb.sum, sb.sum * 1e-12);
    EXPECT_DOUBLE_EQ(sa.p50, sb.p50);
    EXPECT_DOUBLE_EQ(sa.p99, sb.p99);
}

// --- Shared merge path ---------------------------------------------

TEST(ObsMerge, StatsMergeCountersIsTheOnePath)
{
    std::map<std::string, std::uint64_t> into = {{"a", 1}, {"b", 2}};
    stats::mergeCounters(into, {{"b", 3}, {"c", 4}});
    EXPECT_EQ(into.at("a"), 1u);
    EXPECT_EQ(into.at("b"), 5u);
    EXPECT_EQ(into.at("c"), 4u);

    // CounterSet::merge goes through the same path.
    CounterSet x, y;
    x.add("hits", 2);
    y.add("hits", 5);
    y.add("misses", 1);
    x.merge(y);
    EXPECT_EQ(x.get("hits"), 7u);
    EXPECT_EQ(x.get("misses"), 1u);

    // And so does the registry, both from CounterSet...
    obs::MetricsRegistry reg;
    reg.add("hits", 10);
    reg.mergeCounterSet(x);
    EXPECT_EQ(reg.counter("hits"), 17u);
    EXPECT_EQ(reg.counter("misses"), 1u);
    reg.mergeCounterSet(y, "engine.");
    EXPECT_EQ(reg.counter("engine.hits"), 5u);

    // ...and registry-to-registry.
    obs::MetricsRegistry other;
    other.add("hits", 3);
    other.setGauge("speed", 2.5);
    other.observe("lat", 7.0);
    reg.merge(other);
    EXPECT_EQ(reg.counter("hits"), 20u);
    EXPECT_DOUBLE_EQ(reg.gauge("speed"), 2.5);
    EXPECT_EQ(reg.histogram("lat").count, 1u);
}

TEST(ObsMerge, StatsPercentileClampsOutOfRange)
{
    const std::vector<double> xs = {10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(stats::percentile(xs, -10), 10.0);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 180), 40.0);
}

// --- Registry ------------------------------------------------------

TEST(ObsRegistry, ThreadSafetySmoke)
{
    obs::MetricsRegistry reg;
    constexpr int kThreads = 8;
    constexpr int kIncrements = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg] {
            for (int i = 0; i < kIncrements; ++i) {
                reg.add("shared.counter");
                reg.observe("shared.hist", 1.0);
                reg.setGauge("shared.gauge", 1.0);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(reg.counter("shared.counter"),
              static_cast<std::uint64_t>(kThreads) * kIncrements);
    EXPECT_EQ(reg.histogram("shared.hist").count,
              static_cast<std::uint64_t>(kThreads) * kIncrements);
    EXPECT_DOUBLE_EQ(reg.gauge("shared.gauge"), 1.0);
}

TEST(ObsRegistry, JsonShapeAndClear)
{
    obs::MetricsRegistry reg;
    reg.add("runs", 3);
    reg.setGauge("speedup", 6.6);
    reg.observe("cycles", 100.0);
    reg.observe("cycles", 300.0);
    const std::string json = reg.toJson();
    EXPECT_NE(json.find("\"papsim_metrics_version\": 1"),
              std::string::npos);
    EXPECT_NE(json.find("\"runs\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"speedup\": 6.6"), std::string::npos);
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
    reg.clear();
    EXPECT_EQ(reg.counter("runs"), 0u);
    EXPECT_EQ(reg.histogram("cycles").count, 0u);
}

// --- Trace sink ----------------------------------------------------

/**
 * Minimal JSON syntax checker (recursive descent over one value).
 * Returns true iff the whole string is one valid JSON value.
 */
class JsonChecker
{
  public:
    static bool valid(const std::string &s)
    {
        JsonChecker c(s);
        c.skipWs();
        if (!c.value())
            return false;
        c.skipWs();
        return c.pos_ == s.size();
    }

  private:
    explicit JsonChecker(const std::string &s) : s_(s) {}

    bool value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\')
                ++pos_;
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_;
        return true;
    }

    bool number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos_)
            if (pos_ >= s_.size() || s_[pos_] != *p)
                return false;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

TEST(ObsTrace, JsonIsParseableAndSpansWellNested)
{
    obs::TraceSink sink;
    obs::setTracer(&sink);
    {
        PAP_TRACE_SCOPE("outer");
        {
            PAP_TRACE_SCOPE("inner", "detail");
            sink.instant("marker", "pap", {{"k", 1.0}});
        }
        sink.counterEvent("flows", 17.0);
    }
    // Spans from another thread land on their own track.
    std::thread other([&] {
        PAP_TRACE_SCOPE("worker");
    });
    other.join();
    sink.complete("execute", "ap.sim", 0.0, 120.0, obs::kSimPid, 0,
                  {{"flows", 4.0}});
    sink.labelProcess(obs::kSimPid, "AP");
    obs::setTracer(nullptr);

    EXPECT_EQ(sink.openSpans(), 0u);

    // Every B has a matching E on its own track, in stack order.
    std::map<std::int64_t, std::vector<std::string>> stacks;
    int begins = 0, ends = 0;
    for (const obs::TraceEvent &e : sink.events()) {
        if (e.ph == 'B') {
            ++begins;
            stacks[e.tid].push_back(e.name);
        } else if (e.ph == 'E') {
            ++ends;
            ASSERT_FALSE(stacks[e.tid].empty());
            EXPECT_EQ(stacks[e.tid].back(), e.name);
            stacks[e.tid].pop_back();
        }
    }
    EXPECT_EQ(begins, 3);
    EXPECT_EQ(ends, 3);
    for (const auto &[tid, stack] : stacks)
        EXPECT_TRUE(stack.empty()) << "track " << tid;

    const std::string json = sink.toJson();
    EXPECT_TRUE(JsonChecker::valid(json)) << json;
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);

    // Phase summary aggregates the closed spans.
    bool saw_outer = false;
    for (const auto &s : sink.phaseSummary()) {
        if (s.name == "outer") {
            saw_outer = true;
            EXPECT_EQ(s.count, 1u);
            EXPECT_GE(s.totalUs, 0.0);
        }
    }
    EXPECT_TRUE(saw_outer);
}

TEST(ObsTrace, MetricsJsonIsParseable)
{
    obs::MetricsRegistry reg;
    reg.add("a.count", 2);
    reg.setGauge("b.gauge", 0.125);
    reg.observe("c.hist", 3.5);
    EXPECT_TRUE(JsonChecker::valid(reg.toJson())) << reg.toJson();

    // Names needing escapes still serialize to valid JSON.
    reg.add("weird\"name\\with\nstuff");
    EXPECT_TRUE(JsonChecker::valid(reg.toJson())) << reg.toJson();
}

TEST(ObsRegistry, NonFiniteGaugesSerializeToValidJson)
{
    obs::MetricsRegistry reg;
    reg.setGauge("fine", 1.5);
    reg.setGauge("nan", std::numeric_limits<double>::quiet_NaN());
    reg.setGauge("pos_inf", std::numeric_limits<double>::infinity());
    reg.setGauge("neg_inf", -std::numeric_limits<double>::infinity());
    // A histogram fed a non-finite observation must not poison the
    // serialized stats either.
    reg.observe("hist", 2.0);
    reg.observe("hist", std::numeric_limits<double>::quiet_NaN());

    const std::string json = reg.toJson();
    EXPECT_TRUE(JsonChecker::valid(json)) << json;
    // bare nan/inf/Infinity tokens are not JSON; they must have been
    // replaced with a finite placeholder.
    EXPECT_EQ(json.find("nan,"), std::string::npos) << json;
    EXPECT_EQ(json.find(": nan"), std::string::npos) << json;
    EXPECT_EQ(json.find("inf,"), std::string::npos) << json;
    EXPECT_EQ(json.find(": inf"), std::string::npos) << json;
    EXPECT_EQ(json.find("Infinity"), std::string::npos) << json;
    EXPECT_NE(json.find("\"fine\": 1.5"), std::string::npos) << json;
}

TEST(ObsTrace, FlowEventsCarryIdsAndBindingPoint)
{
    obs::TraceSink sink;
    const std::uint64_t id1 = obs::TraceSink::newFlowId();
    const std::uint64_t id2 = obs::TraceSink::newFlowId();
    ASSERT_NE(id1, 0u);
    ASSERT_NE(id2, 0u);
    EXPECT_NE(id1, id2);

    sink.begin("pipeline.admit");
    sink.flow('s', "segment", id1);
    sink.end();
    sink.begin("pipeline.task");
    sink.flow('t', "segment", id1);
    sink.end();
    sink.begin("pipeline.consume");
    sink.flow('f', "segment", id1);
    sink.end();

    int starts = 0, steps = 0, finishes = 0;
    for (const obs::TraceEvent &e : sink.events()) {
        if (e.ph == 's') { ++starts; EXPECT_EQ(e.id, id1); }
        if (e.ph == 't') { ++steps; EXPECT_EQ(e.id, id1); }
        if (e.ph == 'f') { ++finishes; EXPECT_EQ(e.id, id1); }
    }
    EXPECT_EQ(starts, 1);
    EXPECT_EQ(steps, 1);
    EXPECT_EQ(finishes, 1);

    const std::string json = sink.toJson();
    EXPECT_TRUE(JsonChecker::valid(json)) << json;
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos) << json;
    // Flow ends bind to the enclosing slice ("bp":"e"), which is what
    // makes Perfetto draw the arrow into the consuming span.
    EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos) << json;
}

/**
 * The PR-pinned bug: overlap-mode runs used to emit unbalanced B/E
 * pairs on worker tracks and no flow linkage at all. A real overlap
 * run must produce a trace with (a) every B matched by an E on its
 * own track in stack order, (b) every admitted segment's flow id
 * appearing as s -> t -> f in non-decreasing timestamp order, and
 * (c) valid JSON overall.
 */
TEST(ObsTrace, OverlapPipelineTraceIsWellFormed)
{
    obs::TraceSink sink;
    obs::setTracer(&sink);

    Rng rng(77);
    const Nfa nfa = compileRuleset({{"ab.*cd", 1}, {"fgh", 2}}, "m");
    const InputTrace input = randomTextTrace(rng, 16384, "abcdfgh ");
    ApConfig cfg = ApConfig::d480(1);
    cfg.devicesPerRank = 8;
    cfg.halfCoresPerDevice = 1;
    PapOptions opt;
    opt.threads = 4;
    opt.pipeline = PipelineMode::Overlap;
    const PapResult r = runPap(nfa, input, cfg, opt);
    obs::setTracer(nullptr);
    ASSERT_TRUE(r.status.ok()) << r.status.toString();
    ASSERT_GT(r.numSegments, 1u);

    EXPECT_EQ(sink.openSpans(), 0u);

    std::map<std::int64_t, std::vector<std::string>> stacks;
    struct FlowTimes
    {
        double start = -1.0, step = -1.0, finish = -1.0;
    };
    std::map<std::uint64_t, FlowTimes> flows;
    bool saw_inflight_counter = false;
    bool saw_density_counter = false;
    for (const obs::TraceEvent &e : sink.events()) {
        switch (e.ph) {
          case 'B':
            stacks[e.tid].push_back(e.name);
            break;
          case 'E':
            ASSERT_FALSE(stacks[e.tid].empty())
                << "E without B on track " << e.tid;
            EXPECT_EQ(stacks[e.tid].back(), e.name)
                << "interleaved B/E on track " << e.tid;
            stacks[e.tid].pop_back();
            break;
          case 's':
            ASSERT_NE(e.id, 0u);
            flows[e.id].start = e.ts;
            break;
          case 't':
            ASSERT_NE(e.id, 0u);
            flows[e.id].step = e.ts;
            break;
          case 'f':
            ASSERT_NE(e.id, 0u);
            flows[e.id].finish = e.ts;
            break;
          case 'C':
            if (e.name == std::string("pipeline.inflight"))
                saw_inflight_counter = true;
            if (e.name == std::string("engine.active_density"))
                saw_density_counter = true;
            break;
          default:
            break;
        }
    }
    for (const auto &[tid, stack] : stacks)
        EXPECT_TRUE(stack.empty()) << "unclosed span on track " << tid;

    // One flow per segment, each fully linked admission ->
    // execution -> composition with causally ordered timestamps.
    EXPECT_EQ(flows.size(), static_cast<std::size_t>(r.numSegments));
    for (const auto &[id, t] : flows) {
        EXPECT_GE(t.start, 0.0) << "flow " << id << " never started";
        EXPECT_GE(t.step, t.start) << "flow " << id;
        EXPECT_GE(t.finish, t.step) << "flow " << id;
    }
    EXPECT_TRUE(saw_inflight_counter);
    EXPECT_TRUE(saw_density_counter);

    EXPECT_TRUE(JsonChecker::valid(sink.toJson()));
}

TEST(ObsTrace, DisabledTracerAllocatesNothing)
{
    obs::setTracer(nullptr);
    // Warm up any lazy statics before measuring.
    { PAP_TRACE_SCOPE("warmup"); }
    const std::uint64_t before =
        gAllocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        PAP_TRACE_SCOPE("hot.path");
        PAP_TRACE_SCOPE("hot.path.inner", "cat");
    }
    const std::uint64_t after =
        gAllocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before);
}

} // namespace
} // namespace pap
