/**
 * @file
 * The hardened-execution contract: deterministic fault injection, the
 * fault matrix (every kind injected -> detected -> recovered with
 * byte-identical final reports), SVC-overflow policies, and batching
 * equivalence.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ap/ap_config.h"
#include "common/error.h"
#include "common/rng.h"
#include "nfa/glushkov.h"
#include "obs/metrics.h"
#include "pap/fault_injector.h"
#include "pap/runner.h"
#include "workload_helpers.h"

namespace pap {
namespace {

ApConfig
smallBoard(std::uint32_t half_cores)
{
    ApConfig cfg = ApConfig::d480(1);
    cfg.devicesPerRank = half_cores;
    cfg.halfCoresPerDevice = 1;
    return cfg;
}

struct Workload
{
    Nfa nfa;
    InputTrace input;
};

Workload
faultWorkload()
{
    Rng rng(91);
    return Workload{compileRuleset({{"ab.*cd", 1}, {"fgh", 2}}, "m"),
                    randomTextTrace(rng, 16384, "abcdfgh ")};
}

// --- Spec parsing ----------------------------------------------------

TEST(FaultSpec, ParsesKindsCountsAndRates)
{
    auto made =
        FaultInjector::fromSpec("corrupt-sv:3:0.5,drop-fiv", 7);
    ASSERT_TRUE(made.ok());
    FaultInjector &fi = made.value();
    EXPECT_EQ(fi.remaining(FaultKind::CorruptStateVector), 3u);
    EXPECT_EQ(fi.remaining(FaultKind::DropFiv), 1u);
    EXPECT_EQ(fi.remaining(FaultKind::DropReport), 0u);
    EXPECT_EQ(fi.injected(), 0u);
}

TEST(FaultSpec, AllArmsEveryHardwareKind)
{
    auto made = FaultInjector::fromSpec("all:4", 7);
    ASSERT_TRUE(made.ok());
    for (std::size_t k = 0; k < kWorkerFaultFirst; ++k)
        EXPECT_EQ(made.value().remaining(static_cast<FaultKind>(k)),
                  4u);
    // The host worker kinds only arm when named explicitly, so "all"
    // keeps its classic hardware-fault semantics.
    for (std::size_t k = kWorkerFaultFirst; k < kFaultKindCount; ++k)
        EXPECT_EQ(made.value().remaining(static_cast<FaultKind>(k)),
                  0u);
}

TEST(FaultSpec, WorkerKindsArmExplicitly)
{
    auto made =
        FaultInjector::fromSpec("stall-worker:2,crash-worker:3:0.5", 7);
    ASSERT_TRUE(made.ok());
    EXPECT_EQ(made.value().remaining(FaultKind::StallWorker), 2u);
    EXPECT_EQ(made.value().remaining(FaultKind::CrashWorker), 3u);
    EXPECT_EQ(made.value().remaining(FaultKind::DropFiv), 0u);
}

TEST(FaultSpec, RejectsMalformedSpecs)
{
    for (const char *bad :
         {"bogus", "corrupt-sv:x", "corrupt-sv:1:2.0",
          "corrupt-sv:1:0", "corrupt-sv:1:-1", "", ",", "all:"}) {
        auto made = FaultInjector::fromSpec(bad, 1);
        EXPECT_FALSE(made.ok()) << "spec '" << bad << "'";
        EXPECT_EQ(made.status().code(), ErrorCode::InvalidInput)
            << "spec '" << bad << "'";
    }
}

// --- Determinism -----------------------------------------------------

TEST(FaultInjection, SameSeedSameDecisions)
{
    const auto decisions = [](std::uint64_t seed) {
        auto fi =
            FaultInjector::fromSpec("corrupt-sv:5:0.3,evict-svc:5:0.3,"
                                    "drop-fiv:3:0.5",
                                    seed)
                .value();
        std::vector<int> out;
        for (FlowId f = 0; f < 200; ++f)
            out.push_back(static_cast<int>(fi.onContextSwitch(f)));
        for (int i = 0; i < 8; ++i)
            out.push_back(fi.onFivDownload() ? 1 : 0);
        return out;
    };
    EXPECT_EQ(decisions(42), decisions(42));
    EXPECT_NE(decisions(42), decisions(43));
}

TEST(FaultInjection, CorruptVectorTogglesExactlyOneState)
{
    FaultInjector fi(5);
    for (int round = 0; round < 32; ++round) {
        std::vector<StateId> v = {1, 3, 5};
        fi.corruptVector(v, 8);
        // One state toggled: size changes by one, stays sorted and
        // unique, and every member is in range.
        EXPECT_TRUE(v.size() == 2 || v.size() == 4);
        EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
        EXPECT_EQ(std::adjacent_find(v.begin(), v.end()), v.end());
        for (const StateId q : v)
            EXPECT_LT(q, 8u);
    }
}

TEST(FaultInjection, BudgetAndRateGateInjection)
{
    auto fi = FaultInjector::fromSpec("evict-svc:2", 9).value();
    int fired = 0;
    for (FlowId f = 0; f < 50; ++f)
        if (fi.onContextSwitch(f) == FaultInjector::SvAction::Evict)
            ++fired;
    EXPECT_EQ(fired, 2); // rate 1.0: budget drains immediately
    EXPECT_EQ(fi.remaining(FaultKind::EvictSvcEntry), 0u);
    EXPECT_EQ(fi.injected(), 2u);
    EXPECT_EQ(fi.injected(FaultKind::EvictSvcEntry), 2u);
}

// --- The fault matrix ------------------------------------------------

class FaultMatrix : public ::testing::TestWithParam<const char *>
{};

TEST_P(FaultMatrix, DetectedRecoveredAndByteIdentical)
{
    const Workload w = faultWorkload();
    const ApConfig board = smallBoard(8);

    PapOptions clean_opt;
    const PapResult clean = runPap(w.nfa, w.input, board, clean_opt);
    ASSERT_TRUE(clean.verified);

    const std::string spec = std::string(GetParam()) + ":32";
    auto fi = FaultInjector::fromSpec(spec, 11).value();
    PapOptions opt;
    opt.faultInjector = &fi;
    const PapResult r = runPap(w.nfa, w.input, board, opt);

    EXPECT_GT(fi.injected(), 0u) << spec;
    // The oracle caught the damage and repaired the result...
    EXPECT_FALSE(r.verified);
    EXPECT_TRUE(r.recovered);
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(fi.detected(), fi.injected());
    EXPECT_EQ(fi.recovered(), fi.injected());
    // ...so the final reports are byte-identical to the fault-free run.
    EXPECT_EQ(r.reports, clean.reports);
    // Recovery replays the golden execution: never slower than 1.0x,
    // never faster either.
    EXPECT_DOUBLE_EQ(r.speedup, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FaultMatrix,
                         ::testing::Values("corrupt-sv", "evict-svc",
                                           "drop-report",
                                           "truncate-report",
                                           "drop-fiv"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (auto &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

TEST(FaultInjection, FaultFreeInjectorChangesNothing)
{
    const Workload w = faultWorkload();
    const ApConfig board = smallBoard(8);
    const PapResult clean = runPap(w.nfa, w.input, board);

    FaultInjector fi(3); // armed with nothing
    PapOptions opt;
    opt.faultInjector = &fi;
    const PapResult r = runPap(w.nfa, w.input, board, opt);
    EXPECT_EQ(fi.injected(), 0u);
    EXPECT_TRUE(r.verified);
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.reports, clean.reports);
    EXPECT_EQ(r.papCycles, clean.papCycles);
}

TEST(FaultInjection, MetricsRecordTheLoop)
{
    const Workload w = faultWorkload();
    obs::metrics().clear();
    auto fi = FaultInjector::fromSpec("corrupt-sv:32", 11).value();
    PapOptions opt;
    opt.faultInjector = &fi;
    const PapResult r = runPap(w.nfa, w.input, smallBoard(8), opt);
    ASSERT_TRUE(r.recovered);
    obs::MetricsRegistry &m = obs::metrics();
    EXPECT_EQ(m.counter("faults.injected"), fi.injected());
    EXPECT_EQ(m.counter("faults.injected.corrupt_sv"), fi.injected());
    EXPECT_EQ(m.counter("faults.detected"), fi.detected());
    EXPECT_EQ(m.counter("faults.recovered"), fi.recovered());
    EXPECT_EQ(m.counter("runner.verification_divergence"), 1u);
    EXPECT_EQ(m.counter("runner.recoveries"), 1u);
    EXPECT_EQ(m.counter("runner.degraded_runs"), 1u);
    obs::metrics().clear();
}

// --- SVC overflow policies -------------------------------------------

/**
 * Two-star one-component rule: segments need 2 enumeration flows plus
 * the ASG flow, so an SVC with fewer entries forces the overflow path.
 */
Workload
overflowWorkload()
{
    Rng rng(64);
    return Workload{compileRuleset({{"ab.*cd.*ef", 1}}, "m"),
                    randomTextTrace(rng, 8192, "abcdefgh")};
}

TEST(SvcOverflow, BatchPolicyMatchesUnbatchedRun)
{
    const Workload w = overflowWorkload();
    ApConfig roomy = smallBoard(4);
    ApConfig tight = smallBoard(4);
    tight.svcEntriesPerDevice = 2; // ASG + 1 enum flow per batch

    const PapResult whole = runPap(w.nfa, w.input, roomy);
    const PapResult batched = runPap(w.nfa, w.input, tight);

    ASSERT_TRUE(batched.status.ok());
    EXPECT_TRUE(batched.svcOverflow);
    EXPECT_GT(batched.svcBatches, 1u);
    EXPECT_FALSE(batched.degraded);
    EXPECT_TRUE(batched.verified);
    // Batching is a scheduling change, not a semantic one: reports
    // (and the composed entry census) match the unbatched run.
    EXPECT_EQ(batched.reports, whole.reports);
    EXPECT_EQ(batched.papReportEvents, whole.papReportEvents);
    EXPECT_FALSE(whole.svcOverflow);
    EXPECT_EQ(whole.svcBatches, 1u);
    // Batches serialize on the half-cores and pay re-uploads, so the
    // batched run can never be faster.
    EXPECT_GE(batched.papCycles, whole.papCycles);
}

TEST(SvcOverflow, SequentialFallbackPolicyDegrades)
{
    const Workload w = overflowWorkload();
    ApConfig tight = smallBoard(4);
    tight.svcEntriesPerDevice = 2;
    PapOptions opt;
    opt.overflowPolicy = OverflowPolicy::SequentialFallback;
    const PapResult r = runPap(w.nfa, w.input, tight, opt);
    ASSERT_TRUE(r.status.ok());
    EXPECT_TRUE(r.svcOverflow);
    EXPECT_TRUE(r.degraded);
    EXPECT_TRUE(r.verified);
    EXPECT_DOUBLE_EQ(r.speedup, 1.0);
    const SequentialResult seq = runSequential(w.nfa, w.input, opt);
    EXPECT_EQ(r.reports, seq.reports);
}

TEST(SvcOverflow, FailPolicyReturnsCapacityExceeded)
{
    const Workload w = overflowWorkload();
    ApConfig tight = smallBoard(4);
    tight.svcEntriesPerDevice = 2;
    PapOptions opt;
    opt.overflowPolicy = OverflowPolicy::Fail;
    const PapResult r = runPap(w.nfa, w.input, tight, opt);
    EXPECT_FALSE(r.status.ok());
    EXPECT_EQ(r.status.code(), ErrorCode::CapacityExceeded);
    EXPECT_FALSE(r.verified);
    EXPECT_TRUE(r.reports.empty());
}

TEST(SvcOverflow, BatchingSurvivesFaultInjection)
{
    // Batching and recovery compose: an overflowing run with faults
    // still ends byte-identical to the fault-free unbatched run.
    const Workload w = overflowWorkload();
    ApConfig tight = smallBoard(4);
    tight.svcEntriesPerDevice = 2;
    const PapResult clean =
        runPap(w.nfa, w.input, smallBoard(4));

    auto fi = FaultInjector::fromSpec("all:8", 13).value();
    PapOptions opt;
    opt.faultInjector = &fi;
    const PapResult r = runPap(w.nfa, w.input, tight, opt);
    ASSERT_TRUE(r.status.ok());
    EXPECT_GT(fi.injected(), 0u);
    EXPECT_EQ(r.reports, clean.reports);
    EXPECT_EQ(fi.detected(), fi.recovered());
}

// --- Status/Result plumbing ------------------------------------------

TEST(StatusResult, BasicContract)
{
    Status ok;
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.code(), ErrorCode::Ok);
    EXPECT_EQ(ok.toString(), "Ok");

    const Status bad =
        Status::error(ErrorCode::CapacityExceeded, "need ", 3, " slots");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), ErrorCode::CapacityExceeded);
    EXPECT_EQ(bad.message(), "need 3 slots");
    EXPECT_EQ(bad.toString(), "CapacityExceeded: need 3 slots");

    Result<int> value(17);
    EXPECT_TRUE(value.ok());
    EXPECT_EQ(value.value(), 17);
    EXPECT_EQ(value.valueOr(0), 17);

    Result<int> error(Status::error(ErrorCode::InvalidInput, "nope"));
    EXPECT_FALSE(error.ok());
    EXPECT_EQ(error.status().code(), ErrorCode::InvalidInput);
    EXPECT_EQ(error.valueOr(-1), -1);
}

} // namespace
} // namespace pap
