/**
 * @file
 * Unit and property tests for BitVector.
 */

#include <gtest/gtest.h>

#include "common/bitvector.h"
#include "common/rng.h"

namespace pap {
namespace {

TEST(BitVector, StartsEmpty)
{
    BitVector v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_TRUE(v.none());
    EXPECT_FALSE(v.any());
    EXPECT_EQ(v.count(), 0u);
}

TEST(BitVector, SetResetTest)
{
    BitVector v(200);
    v.set(0);
    v.set(63);
    v.set(64);
    v.set(199);
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(63));
    EXPECT_TRUE(v.test(64));
    EXPECT_TRUE(v.test(199));
    EXPECT_FALSE(v.test(1));
    EXPECT_EQ(v.count(), 4u);
    v.reset(63);
    EXPECT_FALSE(v.test(63));
    EXPECT_EQ(v.count(), 3u);
}

TEST(BitVector, SetAllRespectsTailBits)
{
    BitVector v(70);
    v.setAll();
    EXPECT_EQ(v.count(), 70u);
    // Hash must be identical to setting each bit individually.
    BitVector w(70);
    for (std::size_t i = 0; i < 70; ++i)
        w.set(i);
    EXPECT_EQ(v, w);
    EXPECT_EQ(v.hash(), w.hash());
}

TEST(BitVector, ClearAll)
{
    BitVector v(100);
    v.setAll();
    v.clearAll();
    EXPECT_TRUE(v.none());
}

TEST(BitVector, UnionIntersectionDifference)
{
    BitVector a(128), b(128);
    a.set(1);
    a.set(60);
    b.set(60);
    b.set(90);

    BitVector u = a | b;
    EXPECT_EQ(u.count(), 3u);
    EXPECT_TRUE(u.test(1) && u.test(60) && u.test(90));

    BitVector i = a & b;
    EXPECT_EQ(i.count(), 1u);
    EXPECT_TRUE(i.test(60));

    BitVector d = a;
    d.andNot(b);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_TRUE(d.test(1));
}

TEST(BitVector, SubsetAndIntersects)
{
    BitVector a(80), b(80);
    a.set(5);
    b.set(5);
    b.set(9);
    EXPECT_TRUE(a.isSubsetOf(b));
    EXPECT_FALSE(b.isSubsetOf(a));
    EXPECT_TRUE(a.intersects(b));
    a.reset(5);
    EXPECT_TRUE(a.isSubsetOf(b)); // empty set is subset of anything
    EXPECT_FALSE(a.intersects(b));
}

TEST(BitVector, ForEachSetAscending)
{
    BitVector v(300);
    const std::vector<std::uint32_t> expect = {0, 64, 65, 128, 299};
    for (const auto i : expect)
        v.set(i);
    EXPECT_EQ(v.toIndices(), expect);
}

TEST(BitVector, HashDistinguishesContents)
{
    BitVector a(256), b(256);
    a.set(3);
    b.set(4);
    EXPECT_NE(a.hash(), b.hash());
}

TEST(BitVector, RandomizedAgainstReferenceSets)
{
    Rng rng(77);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 1 + rng.nextBelow(500);
        BitVector a(n), b(n);
        std::vector<bool> ra(n, false), rb(n, false);
        for (int k = 0; k < 64; ++k) {
            const std::size_t i = rng.nextBelow(n);
            const std::size_t j = rng.nextBelow(n);
            a.set(i);
            ra[i] = true;
            b.set(j);
            rb[j] = true;
        }
        BitVector u = a | b;
        std::size_t expect_count = 0;
        bool expect_subset = true;
        for (std::size_t i = 0; i < n; ++i) {
            if (ra[i] || rb[i])
                ++expect_count;
            EXPECT_EQ(u.test(i), ra[i] || rb[i]);
            if (ra[i] && !rb[i])
                expect_subset = false;
        }
        EXPECT_EQ(u.count(), expect_count);
        EXPECT_EQ(a.isSubsetOf(b), expect_subset);
    }
}

} // namespace
} // namespace pap
