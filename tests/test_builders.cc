/**
 * @file
 * Domain automata builders: exact-match chains, Hamming machines
 * (verified against a sliding-window mismatch count), and Levenshtein
 * machines (verified against a dynamic-programming edit-distance
 * oracle over all substrings).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.h"
#include "engine/reference_engine.h"
#include "nfa/builders.h"
#include "workload_helpers.h"

namespace pap {
namespace {

std::set<std::uint64_t>
reportOffsets(const Nfa &nfa, const std::string &text)
{
    const InputTrace t = InputTrace::fromString(text);
    const ReferenceResult res = referenceRun(nfa, t.symbols());
    std::set<std::uint64_t> out;
    for (const auto &e : res.reports)
        out.insert(e.offset);
    return out;
}

TEST(Builders, ExactMatchChain)
{
    const Nfa nfa = buildExactMatchSet({"abc", "bcd"}, "em");
    EXPECT_EQ(nfa.size(), 6u);
    const auto offs = reportOffsets(nfa, "zabcdz");
    EXPECT_EQ(offs, (std::set<std::uint64_t>{3, 4}));
}

TEST(Builders, ExactMatchOverlappingOccurrences)
{
    const Nfa nfa = buildExactMatchSet({"aa"}, "em");
    const auto offs = reportOffsets(nfa, "aaaa");
    EXPECT_EQ(offs, (std::set<std::uint64_t>{1, 2, 3}));
}

/** Number of mismatches between pattern and the window ending at i. */
int
hammingMismatches(const std::string &text, std::size_t end,
                  const std::string &pattern)
{
    if (end + 1 < pattern.size())
        return 1 << 20;
    int mismatches = 0;
    const std::size_t start = end + 1 - pattern.size();
    for (std::size_t i = 0; i < pattern.size(); ++i)
        if (text[start + i] != pattern[i])
            ++mismatches;
    return mismatches;
}

TEST(Builders, HammingAgainstOracle)
{
    Rng rng(8);
    for (int trial = 0; trial < 8; ++trial) {
        std::string pattern;
        const int m = 5 + static_cast<int>(rng.nextBelow(5));
        for (int i = 0; i < m; ++i)
            pattern += "ACGT"[rng.nextBelow(4)];
        const int d = static_cast<int>(rng.nextBelow(3));
        const Nfa nfa = buildHamming(pattern, d, 1, "h");

        std::string text;
        for (int i = 0; i < 300; ++i)
            text += "ACGT"[rng.nextBelow(4)];
        const auto offs = reportOffsets(nfa, text);
        for (std::size_t end = 0; end < text.size(); ++end) {
            const bool expect =
                hammingMismatches(text, end, pattern) <= d;
            EXPECT_EQ(offs.contains(end), expect)
                << "pattern=" << pattern << " d=" << d
                << " end=" << end;
        }
    }
}

/** Min edit distance between pattern and any substring ending at i. */
int
minEditDistanceEndingAt(const std::string &text, std::size_t end,
                        const std::string &pattern)
{
    // DP over the reversed problem: distance from pattern to
    // substrings text[start..end], minimized over start; computed by
    // the standard "search" variant where row 0 is all zeros over the
    // text, restricted to substrings ending exactly at `end`.
    const int m = static_cast<int>(pattern.size());
    int best = 1 << 20;
    const int max_len =
        std::min<int>(static_cast<int>(end) + 1,
                      m + 8); // distance > 8 never relevant here
    for (int len = 1; len <= max_len; ++len) {
        const int start = static_cast<int>(end) + 1 - len;
        std::vector<int> prev(m + 1), cur(m + 1);
        for (int j = 0; j <= m; ++j)
            prev[j] = j;
        for (int i = 1; i <= len; ++i) {
            cur[0] = i;
            for (int j = 1; j <= m; ++j) {
                const int cost =
                    text[start + i - 1] == pattern[j - 1] ? 0 : 1;
                cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1,
                                   prev[j - 1] + cost});
            }
            std::swap(prev, cur);
        }
        best = std::min(best, prev[m]);
    }
    return best;
}

TEST(Builders, LevenshteinAgainstOracle)
{
    Rng rng(9);
    for (int trial = 0; trial < 6; ++trial) {
        std::string pattern;
        const int m = 4 + static_cast<int>(rng.nextBelow(4));
        for (int i = 0; i < m; ++i)
            pattern += "ACGT"[rng.nextBelow(4)];
        const int d = 1 + static_cast<int>(rng.nextBelow(2));
        const Nfa nfa = buildLevenshtein(pattern, d, 1, "lev");

        std::string text;
        for (int i = 0; i < 160; ++i)
            text += "ACGT"[rng.nextBelow(4)];
        const auto offs = reportOffsets(nfa, text);
        for (std::size_t end = 0; end < text.size(); ++end) {
            const bool expect =
                minEditDistanceEndingAt(text, end, pattern) <= d;
            EXPECT_EQ(offs.contains(end), expect)
                << "pattern=" << pattern << " d=" << d
                << " end=" << end;
        }
    }
}

TEST(Builders, LevenshteinDistanceZeroIsExactMatch)
{
    const Nfa lev = buildLevenshtein("ACGT", 0, 1, "lev0");
    const Nfa exact = buildExactMatchSet({"ACGT"}, "em");
    Rng rng(10);
    std::string text;
    for (int i = 0; i < 400; ++i)
        text += "ACGT"[rng.nextBelow(4)];
    EXPECT_EQ(reportOffsets(lev, text), reportOffsets(exact, text));
}

TEST(Builders, UnionKeepsComponentsApart)
{
    std::vector<Nfa> parts;
    parts.push_back(buildHamming("ACGT", 1, 1, "a"));
    parts.push_back(buildHamming("TTTT", 1, 2, "b"));
    const Nfa u = unionAutomata(parts, "u");
    EXPECT_EQ(u.size(), parts[0].size() + parts[1].size());
}

} // namespace
} // namespace pap
