/**
 * @file
 * Differential tests of the EngineBackend implementations: the sparse
 * FunctionalEngine (reference), the dense BitsetEngine, and the
 * HybridEngine must be observationally identical — same sorted
 * reports, snapshots, state hashes, and counters — on random automata
 * and random inputs, at every SIMD dispatch level the host can
 * execute, and whole PAP runs must be byte-identical (reports, cycle
 * counts, checkpoint files) regardless of the backend.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ap/ap_config.h"
#include "common/charclass.h"
#include "common/error.h"
#include "common/rng.h"
#include "engine/bitset_engine.h"
#include "engine/compiled_nfa.h"
#include "engine/dense_nfa.h"
#include "engine/engine_backend.h"
#include "engine/functional_engine.h"
#include "engine/hybrid_engine.h"
#include "engine/simd.h"
#include "engine/trace.h"
#include "nfa/analysis.h"
#include "nfa/glushkov.h"
#include "pap/exec/checkpoint.h"
#include "pap/runner.h"
#include "workload_helpers.h"

namespace pap {
namespace {

/** All three backends over one automaton, stepped in lockstep. */
struct EngineTrio
{
    CompiledNfa cnfa;
    DenseNfa dnfa;
    EngineScratch scratch;
    FunctionalEngine sparse;
    BitsetEngine dense;
    HybridEngine hybrid;

    EngineTrio(const Nfa &nfa, bool starts,
               SimdLevel simd = currentSimdLevel())
        : cnfa(nfa), dnfa(cnfa), scratch(nfa.size()),
          sparse(cnfa, starts, &scratch), dense(dnfa, starts, simd),
          hybrid(dnfa, starts, simd)
    {
    }

    void
    reset(const std::vector<StateId> &seed, std::uint64_t base = 0)
    {
        sparse.reset(seed, base);
        dense.reset(seed, base);
        hybrid.reset(seed, base);
    }

    void
    step(Symbol s)
    {
        sparse.step(s);
        dense.step(s);
        hybrid.step(s);
    }

    void
    run(const Symbol *data, std::size_t len)
    {
        sparse.run(data, len);
        dense.run(data, len);
        hybrid.run(data, len);
    }

    /** The full equivalence contract at the current instant. */
    void
    expectSameObservableState(const char *where) const
    {
        for (const EngineBackend *other :
             {static_cast<const EngineBackend *>(&dense),
              static_cast<const EngineBackend *>(&hybrid)}) {
            EXPECT_EQ(sparse.activeCount(), other->activeCount())
                << where;
            EXPECT_EQ(sparse.snapshot(), other->snapshot()) << where;
            EXPECT_EQ(sparse.stateHash(), other->stateHash()) << where;
            EXPECT_EQ(sparse.dead(), other->dead()) << where;
            EXPECT_EQ(sparse.cursor(), other->cursor()) << where;
            EXPECT_TRUE(sparse.sameActiveSet(*other)) << where;
            EXPECT_TRUE(other->sameActiveSet(sparse)) << where;
            const EngineCounters &a = sparse.counters();
            const EngineCounters &b = other->counters();
            EXPECT_EQ(a.symbols, b.symbols) << where;
            EXPECT_EQ(a.matches, b.matches) << where;
            EXPECT_EQ(a.enables, b.enables) << where;
        }
        // Word-packed peers also word-compare against each other.
        EXPECT_TRUE(dense.sameActiveSet(hybrid)) << where;
        EXPECT_TRUE(hybrid.sameActiveSet(dense)) << where;
    }
};

std::vector<ReportEvent>
sortedReports(std::vector<ReportEvent> raw)
{
    sortAndDedupReports(raw);
    return raw;
}

TEST(EngineDiff, FuzzAllBackendsAgreeStepByStep)
{
    Rng rng(1234);
    for (int iter = 0; iter < 40; ++iter) {
        const Nfa nfa = randomNfa(rng, 4);
        const InputTrace t =
            randomTextTrace(rng, 256 + rng.nextBelow(512), "abcdefgh\n ");
        for (const bool starts : {true, false}) {
            EngineTrio p(nfa, starts);
            // Enum mode seeds a random state subset; start mode seeds
            // the initial active set like a fresh flow.
            std::vector<StateId> seed = p.cnfa.initialActive();
            if (!starts) {
                seed.clear();
                for (StateId q = 0; q < nfa.size(); ++q)
                    if (rng.nextBool(0.25))
                        seed.push_back(q);
            }
            p.reset(seed);
            p.expectSameObservableState("after reset");
            for (std::uint64_t i = 0; i < t.size(); ++i) {
                p.step(t.begin()[i]);
                // Full-state compares every few symbols keep the fuzz
                // loop fast without losing divergence localization.
                if (i % 17 == 0)
                    p.expectSameObservableState("mid-run");
            }
            p.expectSameObservableState("after run");
            const auto expected = sortedReports(p.sparse.takeReports());
            EXPECT_EQ(expected, sortedReports(p.dense.takeReports()))
                << "iter " << iter << " starts " << starts;
            EXPECT_EQ(expected, sortedReports(p.hybrid.takeReports()))
                << "iter " << iter << " starts " << starts;
        }
    }
}

TEST(EngineDiff, EverySimdLevelMatchesScalarInLockstep)
{
    // The word-packed kernels must be bit-exact across dispatch
    // levels: run the scalar trio and a vectorized trio side by side
    // for every level the host supports (clamp-down makes requesting
    // an unsupported level impossible by construction).
    Rng rng(4321);
    for (int lvl = static_cast<int>(SimdLevel::Avx2);
         lvl <= static_cast<int>(detectSimdLevel()); ++lvl) {
        const SimdLevel level = static_cast<SimdLevel>(lvl);
        for (int iter = 0; iter < 8; ++iter) {
            const Nfa nfa = randomNfa(rng, 4);
            const InputTrace t =
                randomTextTrace(rng, 512, "abcdefgh\n ");
            for (const bool starts : {true, false}) {
                EngineTrio scalar(nfa, starts, SimdLevel::Scalar);
                EngineTrio vec(nfa, starts, level);
                scalar.reset(scalar.cnfa.initialActive());
                vec.reset(vec.cnfa.initialActive());
                for (std::uint64_t i = 0; i < t.size(); ++i) {
                    scalar.step(t.begin()[i]);
                    vec.step(t.begin()[i]);
                    if (i % 31 != 0)
                        continue;
                    EXPECT_EQ(scalar.dense.stateHash(),
                              vec.dense.stateHash())
                        << simdLevelName(level);
                    EXPECT_EQ(scalar.hybrid.stateHash(),
                              vec.hybrid.stateHash())
                        << simdLevelName(level);
                }
                scalar.expectSameObservableState("scalar trio");
                vec.expectSameObservableState("vector trio");
                EXPECT_EQ(scalar.dense.snapshot(), vec.dense.snapshot());
                EXPECT_EQ(scalar.hybrid.snapshot(),
                          vec.hybrid.snapshot());
                EXPECT_EQ(sortedReports(scalar.dense.takeReports()),
                          sortedReports(vec.dense.takeReports()))
                    << simdLevelName(level);
                EXPECT_EQ(sortedReports(scalar.hybrid.takeReports()),
                          sortedReports(vec.hybrid.takeReports()))
                    << simdLevelName(level);
            }
        }
    }
}

TEST(EngineDiff, RunBulkMatchesStepwise)
{
    Rng rng(99);
    const Nfa nfa = randomNfa(rng, 3);
    const InputTrace t = randomTextTrace(rng, 2048, "abcdefgh");
    EngineTrio p(nfa, true);
    p.reset(p.cnfa.initialActive());
    p.run(t.begin(), t.size());
    p.expectSameObservableState("after bulk run");
    const auto expected = sortedReports(p.sparse.takeReports());
    EXPECT_EQ(expected, sortedReports(p.dense.takeReports()));
    EXPECT_EQ(expected, sortedReports(p.hybrid.takeReports()));
}

TEST(EngineDiff, OverwriteActiveAppliesSameFiltering)
{
    // overwriteActive must drop AllInput starts when start machinery
    // is live, identically on both backends.
    Rng rng(7);
    const Nfa nfa = compileRuleset({{".*ab", 1}, {"cd", 2}}, "m");
    const InputTrace t = randomTextTrace(rng, 512, "abcd");
    for (const bool starts : {true, false}) {
        EngineTrio p(nfa, starts);
        p.reset(p.cnfa.initialActive());
        p.run(t.begin(), 100);
        std::vector<StateId> all;
        for (StateId q = 0; q < nfa.size(); ++q)
            all.push_back(q);
        p.sparse.overwriteActive(all);
        p.dense.overwriteActive(all);
        p.hybrid.overwriteActive(all);
        p.expectSameObservableState("after overwrite");
        p.run(t.begin() + 100, t.size() - 100);
        p.expectSameObservableState("after overwrite + run");
    }
}

TEST(EngineDiff, DenseRangeSizesMatchRangeAnalysis)
{
    Rng rng(31);
    for (int iter = 0; iter < 10; ++iter) {
        const Nfa nfa = randomNfa(rng, 4);
        const CompiledNfa cnfa(nfa);
        const DenseNfa dnfa(cnfa);
        const RangeAnalysis ranges(nfa);
        EXPECT_EQ(dnfa.rangeSizes(), ranges.rangeSizes())
            << "iter " << iter;
    }
}

// --- Whole-run equivalence ------------------------------------------

ApConfig
smallBoard(std::uint32_t half_cores)
{
    ApConfig cfg = ApConfig::d480(1);
    cfg.devicesPerRank = half_cores;
    cfg.halfCoresPerDevice = 1;
    return cfg;
}

struct Workload
{
    Nfa nfa;
    InputTrace input;
};

Workload
diffWorkload(std::uint64_t seed)
{
    Rng rng(seed);
    return Workload{randomNfa(rng, 4),
                    randomTextTrace(rng, 16384, "abcdefgh ")};
}

/** The figure-level facts that must be backend-invariant. */
void
expectSameRun(const PapResult &a, const PapResult &b)
{
    EXPECT_EQ(a.reports, b.reports);
    EXPECT_EQ(a.papCycles, b.papCycles);
    EXPECT_EQ(a.baselineCycles, b.baselineCycles);
    EXPECT_DOUBLE_EQ(a.speedup, b.speedup);
    EXPECT_EQ(a.numSegments, b.numSegments);
    EXPECT_DOUBLE_EQ(a.flowsInRange, b.flowsInRange);
    EXPECT_DOUBLE_EQ(a.avgActiveFlows, b.avgActiveFlows);
    EXPECT_DOUBLE_EQ(a.switchOverheadPct, b.switchOverheadPct);
    EXPECT_EQ(a.flowTransitions, b.flowTransitions);
    EXPECT_EQ(a.flowSymbolCycles, b.flowSymbolCycles);
    ASSERT_EQ(a.segments.size(), b.segments.size());
    for (std::size_t j = 0; j < a.segments.size(); ++j) {
        EXPECT_EQ(a.segments[j].begin, b.segments[j].begin);
        EXPECT_EQ(a.segments[j].length, b.segments[j].length);
        EXPECT_EQ(a.segments[j].flows, b.segments[j].flows);
        EXPECT_EQ(a.segments[j].deactivated,
                  b.segments[j].deactivated);
        EXPECT_EQ(a.segments[j].converged, b.segments[j].converged);
        EXPECT_EQ(a.segments[j].ranToEnd, b.segments[j].ranToEnd);
        EXPECT_EQ(a.segments[j].tDone, b.segments[j].tDone);
        EXPECT_EQ(a.segments[j].tResolve, b.segments[j].tResolve);
    }
}

TEST(EngineDiff, PapRunsAreByteIdenticalAcrossBackends)
{
    for (const std::uint64_t seed : {11u, 22u, 33u}) {
        const Workload w = diffWorkload(seed);
        const ApConfig board = smallBoard(8);
        PapOptions sparse_opt;
        sparse_opt.engine = EngineKind::Sparse;
        PapOptions dense_opt;
        dense_opt.engine = EngineKind::Dense;
        PapOptions hybrid_opt;
        hybrid_opt.engine = EngineKind::Hybrid;
        const PapResult a = runPap(w.nfa, w.input, board, sparse_opt);
        const PapResult b = runPap(w.nfa, w.input, board, dense_opt);
        const PapResult c = runPap(w.nfa, w.input, board, hybrid_opt);
        ASSERT_TRUE(a.status.ok()) << "seed " << seed;
        ASSERT_TRUE(b.status.ok()) << "seed " << seed;
        ASSERT_TRUE(c.status.ok()) << "seed " << seed;
        EXPECT_TRUE(a.verified);
        EXPECT_TRUE(b.verified);
        EXPECT_TRUE(c.verified);
        EXPECT_EQ(a.engineBackend, "sparse");
        EXPECT_EQ(b.engineBackend, "dense");
        EXPECT_EQ(c.engineBackend, "hybrid");
        expectSameRun(a, b);
        expectSameRun(a, c);
    }
}

TEST(EngineDiff, SequentialRunsAgreeAcrossBackends)
{
    const Workload w = diffWorkload(5);
    PapOptions sparse_opt;
    sparse_opt.engine = EngineKind::Sparse;
    PapOptions dense_opt;
    dense_opt.engine = EngineKind::Dense;
    PapOptions hybrid_opt;
    hybrid_opt.engine = EngineKind::Hybrid;
    const SequentialResult a = runSequential(w.nfa, w.input, sparse_opt);
    const SequentialResult b = runSequential(w.nfa, w.input, dense_opt);
    const SequentialResult c = runSequential(w.nfa, w.input, hybrid_opt);
    EXPECT_EQ(a.engineBackend, "sparse");
    EXPECT_EQ(b.engineBackend, "dense");
    EXPECT_EQ(c.engineBackend, "hybrid");
    EXPECT_EQ(a.reports, b.reports);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.matches, b.matches);
    EXPECT_EQ(a.reports, c.reports);
    EXPECT_EQ(a.cycles, c.cycles);
    EXPECT_EQ(a.matches, c.matches);
    // The sparse oracle measures the feedback signal Auto uses.
    EXPECT_GT(a.activeDensity, 0.0);
}

TEST(EngineDiff, CheckpointFilesAreByteIdenticalAcrossBackends)
{
    const Workload w = diffWorkload(44);
    const ApConfig board = smallBoard(8);
    const auto checkpoint_bytes = [&](EngineKind kind) {
        const std::string path = ::testing::TempDir() +
                                 "papsim_engine_diff_" +
                                 engineKindName(kind) + ".ckpt";
        exec::removeCheckpoint(path);
        PapOptions opt;
        opt.engine = kind;
        opt.checkpointPath = path;
        opt.stopAfterSegment = 1;
        const PapResult dead = runPap(w.nfa, w.input, board, opt);
        EXPECT_EQ(dead.status.code(), ErrorCode::Cancelled);
        std::ifstream in(path, std::ios::binary);
        EXPECT_TRUE(in.good());
        std::ostringstream bytes;
        bytes << in.rdbuf();
        exec::removeCheckpoint(path);
        return bytes.str();
    };
    const std::string sparse_ckpt = checkpoint_bytes(EngineKind::Sparse);
    const std::string dense_ckpt = checkpoint_bytes(EngineKind::Dense);
    const std::string hybrid_ckpt = checkpoint_bytes(EngineKind::Hybrid);
    ASSERT_FALSE(sparse_ckpt.empty());
    EXPECT_EQ(sparse_ckpt, dense_ckpt);
    EXPECT_EQ(sparse_ckpt, hybrid_ckpt);
}

// --- Backend selection ----------------------------------------------

TEST(EngineSelect, ParseEngineKind)
{
    EXPECT_EQ(parseEngineKind("sparse").value(), EngineKind::Sparse);
    EXPECT_EQ(parseEngineKind("dense").value(), EngineKind::Dense);
    EXPECT_EQ(parseEngineKind("hybrid").value(), EngineKind::Hybrid);
    EXPECT_EQ(parseEngineKind("auto").value(), EngineKind::Auto);
    const Result<EngineKind> bad = parseEngineKind("bogus");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::InvalidInput);
}

TEST(EngineSelect, EngineKindNames)
{
    EXPECT_STREQ(engineKindName(EngineKind::Sparse), "sparse");
    EXPECT_STREQ(engineKindName(EngineKind::Dense), "dense");
    EXPECT_STREQ(engineKindName(EngineKind::Hybrid), "hybrid");
    EXPECT_STREQ(engineKindName(EngineKind::Auto), "auto");
}

TEST(EngineSelect, ResolveHonorsExplicitRequestAndThreshold)
{
    ::unsetenv("PAP_ENGINE");
    // Explicit requests ignore the heuristic entirely.
    EXPECT_EQ(resolveEngineKind(EngineKind::Sparse, 1).value(),
              EngineKind::Sparse);
    EXPECT_EQ(resolveEngineKind(EngineKind::Dense, 1u << 20).value(),
              EngineKind::Dense);
    EXPECT_EQ(resolveEngineKind(EngineKind::Hybrid, 1).value(),
              EngineKind::Hybrid);
    EXPECT_EQ(resolveEngineKind(EngineKind::Hybrid, 1u << 20).value(),
              EngineKind::Hybrid);
    // Auto: dense up to the size threshold, hybrid beyond it — the
    // tile-skipping datapath replaces the old fall-back-to-sparse
    // cliff at 16K+ states.
    EXPECT_EQ(resolveEngineKind(EngineKind::Auto,
                                kDenseAutoMaxStates).value(),
              EngineKind::Dense);
    EXPECT_EQ(resolveEngineKind(EngineKind::Auto,
                                kDenseAutoMaxStates + 1).value(),
              EngineKind::Hybrid);
}

TEST(EngineSelect, ResolveConsultsMeasuredDensity)
{
    ::unsetenv("PAP_ENGINE");
    // Small automata stay dense only when the measured active density
    // clears the threshold; sparse activity routes them to hybrid.
    EXPECT_EQ(resolveEngineKind(EngineKind::Auto, kDenseAutoMaxStates,
                                kDenseAutoMinDensity).value(),
              EngineKind::Dense);
    EXPECT_EQ(resolveEngineKind(EngineKind::Auto, kDenseAutoMaxStates,
                                0.9).value(),
              EngineKind::Dense);
    EXPECT_EQ(resolveEngineKind(EngineKind::Auto, kDenseAutoMaxStates,
                                0.09).value(),
              EngineKind::Hybrid);
    // No measurement (negative hint) keeps the size-only behavior.
    EXPECT_EQ(resolveEngineKind(EngineKind::Auto, kDenseAutoMaxStates,
                                -1.0).value(),
              EngineKind::Dense);
    // Beyond the size threshold density cannot rescue dense.
    EXPECT_EQ(resolveEngineKind(EngineKind::Auto,
                                kDenseAutoMaxStates + 1, 0.9).value(),
              EngineKind::Hybrid);
    // Explicit requests ignore density like they ignore size.
    EXPECT_EQ(resolveEngineKind(EngineKind::Dense, 64, 0.0).value(),
              EngineKind::Dense);
    EXPECT_EQ(resolveEngineKind(EngineKind::Sparse, 64, 0.9).value(),
              EngineKind::Sparse);
}

TEST(EngineSelect, ResolveConsultsEnvironmentOnlyForAuto)
{
    ::setenv("PAP_ENGINE", "sparse", 1);
    EXPECT_EQ(resolveEngineKind(EngineKind::Auto, 4).value(),
              EngineKind::Sparse);
    EXPECT_EQ(resolveEngineKind(EngineKind::Dense, 4).value(),
              EngineKind::Dense);
    ::setenv("PAP_ENGINE", "dense", 1);
    EXPECT_EQ(resolveEngineKind(EngineKind::Auto, 1u << 20).value(),
              EngineKind::Dense);
    ::unsetenv("PAP_ENGINE");
}

TEST(EngineSelect, InvalidEnvironmentIsATypedError)
{
    // An invalid PAP_ENGINE value fails exactly like an invalid
    // --engine flag: a typed InvalidInput error, never a silent
    // fallback to the threshold (and never for explicit requests,
    // which don't consult the environment at all).
    ::setenv("PAP_ENGINE", "wat", 1);
    const Result<EngineKind> bad = resolveEngineKind(EngineKind::Auto, 4);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::InvalidInput);
    EXPECT_NE(bad.status().message().find("PAP_ENGINE"),
              std::string::npos);
    EXPECT_NE(bad.status().message().find("wat"), std::string::npos);
    EXPECT_EQ(resolveEngineKind(EngineKind::Sparse, 4).value(),
              EngineKind::Sparse);
    ::unsetenv("PAP_ENGINE");
}

TEST(EngineSelect, ContextCarriesSelectionErrorAndStaysUsable)
{
    const Nfa nfa = compileRuleset({{"ab", 1}}, "m");
    const CompiledNfa cnfa(nfa);
    ::setenv("PAP_ENGINE", "bogus", 1);
    const EngineContext ctx(cnfa, EngineKind::Auto);
    EXPECT_FALSE(ctx.status().ok());
    EXPECT_EQ(ctx.status().code(), ErrorCode::InvalidInput);
    // The context itself stays constructed on the sparse fallback so
    // callers can decide how to surface the error.
    EXPECT_FALSE(ctx.dense());
    EXPECT_STREQ(ctx.backendName(), "sparse");
    ::unsetenv("PAP_ENGINE");
    const EngineContext good(cnfa, EngineKind::Auto);
    EXPECT_TRUE(good.status().ok());
}

TEST(EngineSelect, RunnersFailTypedOnInvalidEnvironment)
{
    const Nfa nfa = compileRuleset({{"ab", 1}}, "m");
    const InputTrace input(
        std::vector<Symbol>(64, static_cast<Symbol>('a')));
    ::setenv("PAP_ENGINE", "nope", 1);
    const SequentialResult seq = runSequential(nfa, input);
    EXPECT_FALSE(seq.status.ok());
    EXPECT_EQ(seq.status.code(), ErrorCode::InvalidInput);
    EXPECT_TRUE(seq.reports.empty());
    const PapResult par =
        runPap(nfa, input, ApConfig::d480(1), PapOptions{});
    EXPECT_FALSE(par.status.ok());
    EXPECT_EQ(par.status.code(), ErrorCode::InvalidInput);
    ::unsetenv("PAP_ENGINE");
}

TEST(EngineSelect, ContextReportsSelectedBackend)
{
    const Nfa nfa = compileRuleset({{"ab", 1}}, "m");
    const CompiledNfa cnfa(nfa);
    ::unsetenv("PAP_ENGINE");
    const EngineContext sparse(cnfa, EngineKind::Sparse);
    EXPECT_FALSE(sparse.dense());
    EXPECT_STREQ(sparse.backendName(), "sparse");
    EXPECT_EQ(sparse.denseNfa(), nullptr);
    const EngineContext dense(cnfa, EngineKind::Dense);
    EXPECT_TRUE(dense.dense());
    EXPECT_STREQ(dense.backendName(), "dense");
    ASSERT_NE(dense.denseNfa(), nullptr);
    EXPECT_EQ(dense.denseNfa()->size(), cnfa.size());
    const EngineContext hybrid(cnfa, EngineKind::Hybrid);
    EXPECT_EQ(hybrid.kind(), EngineKind::Hybrid);
    EXPECT_STREQ(hybrid.backendName(), "hybrid");
    ASSERT_NE(hybrid.denseNfa(), nullptr);
    // The datapath tag is the backend name plus the dispatched SIMD
    // level ("hybrid+avx2"), or the bare name on a scalar host.
    const std::string tag = hybrid.datapathName();
    if (hybrid.simdLevel() == SimdLevel::Scalar)
        EXPECT_EQ(tag, "hybrid");
    else
        EXPECT_EQ(tag, std::string("hybrid+") +
                           simdLevelName(hybrid.simdLevel()));
    EXPECT_EQ(std::string(sparse.datapathName()), "sparse");
}

// --- SIMD dispatch selection ----------------------------------------

TEST(SimdSelect, ParseSimdLevel)
{
    EXPECT_EQ(parseSimdLevel("off").value(), SimdLevel::Scalar);
    EXPECT_EQ(parseSimdLevel("scalar").value(), SimdLevel::Scalar);
    EXPECT_EQ(parseSimdLevel("avx2").value(), SimdLevel::Avx2);
    EXPECT_EQ(parseSimdLevel("avx512").value(), SimdLevel::Avx512);
    EXPECT_EQ(parseSimdLevel("auto").value(), detectSimdLevel());
    const Result<SimdLevel> bad = parseSimdLevel("sse9");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::InvalidInput);
}

TEST(SimdSelect, SimdLevelNames)
{
    EXPECT_STREQ(simdLevelName(SimdLevel::Scalar), "scalar");
    EXPECT_STREQ(simdLevelName(SimdLevel::Avx2), "avx2");
    EXPECT_STREQ(simdLevelName(SimdLevel::Avx512), "avx512");
}

TEST(SimdSelect, ResolveHonorsEnvironmentAndClampsToHost)
{
    ::setenv("PAP_SIMD", "off", 1);
    EXPECT_EQ(resolveSimdLevel().value(), SimdLevel::Scalar);
    // A pinned level the host cannot execute clamps DOWN to the probe
    // instead of failing, so CI matrix entries stay portable.
    ::setenv("PAP_SIMD", "avx512", 1);
    EXPECT_LE(resolveSimdLevel().value(), detectSimdLevel());
    ::setenv("PAP_SIMD", "auto", 1);
    EXPECT_EQ(resolveSimdLevel().value(), detectSimdLevel());
    ::unsetenv("PAP_SIMD");
    EXPECT_EQ(resolveSimdLevel().value(), detectSimdLevel());
    EXPECT_EQ(currentSimdLevel(), detectSimdLevel());
}

TEST(SimdSelect, InvalidEnvironmentIsATypedError)
{
    ::setenv("PAP_SIMD", "bogus", 1);
    const Result<SimdLevel> bad = resolveSimdLevel();
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::InvalidInput);
    EXPECT_NE(bad.status().message().find("PAP_SIMD"),
              std::string::npos);
    // currentSimdLevel() collapses the error to the probe for callers
    // without a status channel.
    EXPECT_EQ(currentSimdLevel(), detectSimdLevel());
    // The typed error reaches run drivers through EngineContext.
    const Nfa nfa = compileRuleset({{"ab", 1}}, "m");
    const CompiledNfa cnfa(nfa);
    const EngineContext ctx(cnfa, EngineKind::Dense);
    EXPECT_FALSE(ctx.status().ok());
    EXPECT_EQ(ctx.status().code(), ErrorCode::InvalidInput);
    const InputTrace input(
        std::vector<Symbol>(64, static_cast<Symbol>('a')));
    const SequentialResult seq = runSequential(nfa, input);
    EXPECT_FALSE(seq.status.ok());
    EXPECT_EQ(seq.status.code(), ErrorCode::InvalidInput);
    const PapResult par =
        runPap(nfa, input, ApConfig::d480(1), PapOptions{});
    EXPECT_FALSE(par.status.ok());
    EXPECT_EQ(par.status.code(), ErrorCode::InvalidInput);
    ::unsetenv("PAP_SIMD");
}

TEST(SimdSelect, ScalarPinDropsTheDatapathSuffix)
{
    const Nfa nfa = compileRuleset({{"ab", 1}}, "m");
    const CompiledNfa cnfa(nfa);
    ::setenv("PAP_SIMD", "off", 1);
    const EngineContext ctx(cnfa, EngineKind::Dense);
    EXPECT_TRUE(ctx.status().ok());
    EXPECT_EQ(ctx.simdLevel(), SimdLevel::Scalar);
    EXPECT_EQ(std::string(ctx.datapathName()), "dense");
    ::unsetenv("PAP_SIMD");
}

// --- Large automata: the 16K-state regime ---------------------------

/**
 * A structured automaton big enough to cross the dense-auto size
 * threshold: chains of narrow single-letter states, a sprinkling of
 * always-on AllInput drivers that keep re-seeding activity, a rare
 * 'h' label that gives the partitioner a small boundary range, and
 * periodic reporting states. Activity stays sparse (a few hundred of
 * 16K+ states), which is exactly the regime the hybrid tile-skipping
 * datapath exists for.
 */
Nfa
largeSyntheticNfa(StateId states)
{
    Nfa nfa("large16k");
    const std::string letters = "abcdefg";
    for (StateId q = 0; q < states; ++q) {
        // Driver successors are the reporting states: they actually
        // fire (a driver re-enables them every cycle), unlike deep
        // chain positions that activity never reaches.
        const bool reporting = (q % 256) == 1;
        const ReportCode code =
            reporting ? static_cast<ReportCode>(1 + q % 31) : 0;
        if (q == 0) {
            nfa.addState(CharClass::single('a'), StartType::StartOfData,
                         reporting, code);
        } else if (q % 256 == 0) {
            // Always-on drivers: match every symbol, re-seed activity.
            nfa.addState(CharClass::all(), StartType::AllInput,
                         reporting, code);
        } else if (q % 1024 == 1) {
            // Rare label: the partitioner's small boundary range.
            nfa.addState(CharClass::single('h'), StartType::None,
                         reporting, code);
        } else {
            nfa.addState(CharClass::single(letters[q % 7]),
                         StartType::None, reporting, code);
        }
    }
    for (StateId q = 0; q < states; ++q) {
        // Chains that wrap within a 1024-state block keep activity
        // persistent without letting it saturate.
        const StateId block = q & ~StateId{1023};
        nfa.addEdge(q, block + ((q - block + 1) & 1023));
        if (q % 256 == 0) {
            // Self-loop keeps drivers alive in enum mode too, where
            // no start fold re-enables AllInput states.
            nfa.addEdge(q, q);
            if (q + 17 < states)
                nfa.addEdge(q, q + 17);
        }
    }
    nfa.finalize();
    return nfa;
}

TEST(EngineDiffLarge, TrioAgreesAt16KStates)
{
    const Nfa nfa = largeSyntheticNfa(16384);
    Rng rng(77);
    const InputTrace t = randomTextTrace(rng, 2048, "abcdefgh");
    for (const bool starts : {true, false}) {
        EngineTrio p(nfa, starts);
        // Start mode seeds like a fresh run; enum mode (no start
        // fold) seeds the self-looping drivers plus a state spread,
        // like a flow plan would.
        std::vector<StateId> seed = p.cnfa.initialActive();
        if (!starts)
            for (StateId q = 0; q < nfa.size(); q += 128)
                seed.push_back(q);
        p.reset(seed);
        for (std::uint64_t i = 0; i < t.size(); ++i) {
            p.step(t.begin()[i]);
            if (i % 64 == 0)
                p.expectSameObservableState("16K mid-run");
        }
        p.expectSameObservableState("16K after run");
        const auto expected = sortedReports(p.sparse.takeReports());
        EXPECT_FALSE(expected.empty());
        EXPECT_EQ(expected, sortedReports(p.dense.takeReports()));
        EXPECT_EQ(expected, sortedReports(p.hybrid.takeReports()));
    }
}

TEST(EngineDiffLarge, AutoResolvesToHybridAt16KStates)
{
    ::unsetenv("PAP_ENGINE");
    const Nfa nfa = largeSyntheticNfa(16384);
    const CompiledNfa cnfa(nfa);
    const EngineContext ctx(cnfa, EngineKind::Auto);
    ASSERT_TRUE(ctx.status().ok());
    EXPECT_EQ(ctx.kind(), EngineKind::Hybrid);
}

TEST(EngineDiffLarge, PapRunsAreByteIdenticalAt16KStates)
{
    // The auto leg asserts the size heuristic, so a CI matrix entry
    // pinning PAP_ENGINE must not override it here.
    ::unsetenv("PAP_ENGINE");
    const Nfa nfa = largeSyntheticNfa(16384);
    Rng rng(88);
    const InputTrace input = randomTextTrace(rng, 16384, "abcdefgh");
    const ApConfig board = smallBoard(8);
    PapOptions sparse_opt;
    sparse_opt.engine = EngineKind::Sparse;
    PapOptions hybrid_opt;
    hybrid_opt.engine = EngineKind::Hybrid;
    PapOptions auto_opt;
    auto_opt.engine = EngineKind::Auto;
    const PapResult a = runPap(nfa, input, board, sparse_opt);
    const PapResult b = runPap(nfa, input, board, hybrid_opt);
    const PapResult c = runPap(nfa, input, board, auto_opt);
    ASSERT_TRUE(a.status.ok());
    ASSERT_TRUE(b.status.ok());
    ASSERT_TRUE(c.status.ok());
    EXPECT_TRUE(a.verified);
    EXPECT_TRUE(b.verified);
    EXPECT_TRUE(c.verified);
    EXPECT_EQ(a.engineBackend, "sparse");
    EXPECT_EQ(b.engineBackend, "hybrid");
    // Auto must pick hybrid above the size threshold.
    EXPECT_EQ(c.engineBackend, "hybrid");
    expectSameRun(a, b);
    expectSameRun(a, c);
    EXPECT_FALSE(a.reports.empty());
}

TEST(EngineDiffLarge, PipelineOverlapIsByteIdenticalAt16KStates)
{
    const Nfa nfa = largeSyntheticNfa(16384);
    Rng rng(91);
    const InputTrace input = randomTextTrace(rng, 16384, "abcdefgh");
    const ApConfig board = smallBoard(8);
    PapOptions sparse_opt;
    sparse_opt.engine = EngineKind::Sparse;
    sparse_opt.pipeline = PipelineMode::Overlap;
    PapOptions hybrid_opt;
    hybrid_opt.engine = EngineKind::Hybrid;
    hybrid_opt.pipeline = PipelineMode::Overlap;
    const PapResult a = runPap(nfa, input, board, sparse_opt);
    const PapResult b = runPap(nfa, input, board, hybrid_opt);
    ASSERT_TRUE(a.status.ok());
    ASSERT_TRUE(b.status.ok());
    EXPECT_TRUE(a.verified);
    EXPECT_TRUE(b.verified);
    expectSameRun(a, b);
}

TEST(EngineDiffLarge, CheckpointResumeIsByteIdenticalAt16KStates)
{
    const Nfa nfa = largeSyntheticNfa(16384);
    Rng rng(93);
    const InputTrace input = randomTextTrace(rng, 16384, "abcdefgh");
    const ApConfig board = smallBoard(8);
    const auto run_with_stop = [&](EngineKind kind) {
        const std::string path = ::testing::TempDir() +
                                 "papsim_engine_diff_16k_" +
                                 engineKindName(kind) + ".ckpt";
        exec::removeCheckpoint(path);
        PapOptions opt;
        opt.engine = kind;
        opt.checkpointPath = path;
        opt.stopAfterSegment = 1;
        const PapResult dead = runPap(nfa, input, board, opt);
        EXPECT_EQ(dead.status.code(), ErrorCode::Cancelled);
        // Resume from the checkpoint and run to completion.
        opt.stopAfterSegment = -1;
        const PapResult done = runPap(nfa, input, board, opt);
        EXPECT_TRUE(done.status.ok());
        exec::removeCheckpoint(path);
        return done;
    };
    const PapResult a = run_with_stop(EngineKind::Sparse);
    const PapResult b = run_with_stop(EngineKind::Hybrid);
    ASSERT_TRUE(a.status.ok());
    ASSERT_TRUE(b.status.ok());
    EXPECT_TRUE(a.verified);
    EXPECT_TRUE(b.verified);
    expectSameRun(a, b);
}

} // namespace
} // namespace pap
