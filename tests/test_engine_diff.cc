/**
 * @file
 * Differential tests of the two EngineBackend implementations: the
 * sparse FunctionalEngine (reference) and the dense BitsetEngine must
 * be observationally identical — same sorted reports, snapshots,
 * state hashes, and counters — on random automata and random inputs,
 * and whole PAP runs must be byte-identical (reports, cycle counts,
 * checkpoint files) regardless of the backend.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ap/ap_config.h"
#include "common/error.h"
#include "common/rng.h"
#include "engine/bitset_engine.h"
#include "engine/compiled_nfa.h"
#include "engine/dense_nfa.h"
#include "engine/engine_backend.h"
#include "engine/functional_engine.h"
#include "engine/trace.h"
#include "nfa/analysis.h"
#include "nfa/glushkov.h"
#include "pap/exec/checkpoint.h"
#include "pap/runner.h"
#include "workload_helpers.h"

namespace pap {
namespace {

/** Both backends over one automaton, stepped in lockstep. */
struct EnginePair
{
    CompiledNfa cnfa;
    DenseNfa dnfa;
    EngineScratch scratch;
    FunctionalEngine sparse;
    BitsetEngine dense;

    EnginePair(const Nfa &nfa, bool starts)
        : cnfa(nfa), dnfa(cnfa), scratch(nfa.size()),
          sparse(cnfa, starts, &scratch), dense(dnfa, starts)
    {
    }

    void
    reset(const std::vector<StateId> &seed, std::uint64_t base = 0)
    {
        sparse.reset(seed, base);
        dense.reset(seed, base);
    }

    /** The full equivalence contract at the current instant. */
    void
    expectSameObservableState(const char *where) const
    {
        EXPECT_EQ(sparse.activeCount(), dense.activeCount()) << where;
        EXPECT_EQ(sparse.snapshot(), dense.snapshot()) << where;
        EXPECT_EQ(sparse.stateHash(), dense.stateHash()) << where;
        EXPECT_EQ(sparse.dead(), dense.dead()) << where;
        EXPECT_EQ(sparse.cursor(), dense.cursor()) << where;
        EXPECT_TRUE(sparse.sameActiveSet(dense)) << where;
        EXPECT_TRUE(dense.sameActiveSet(sparse)) << where;
        const EngineCounters &a = sparse.counters();
        const EngineCounters &b = dense.counters();
        EXPECT_EQ(a.symbols, b.symbols) << where;
        EXPECT_EQ(a.matches, b.matches) << where;
        EXPECT_EQ(a.enables, b.enables) << where;
    }
};

std::vector<ReportEvent>
sortedReports(std::vector<ReportEvent> raw)
{
    sortAndDedupReports(raw);
    return raw;
}

TEST(EngineDiff, FuzzSparseAndDenseAgreeStepByStep)
{
    Rng rng(1234);
    for (int iter = 0; iter < 40; ++iter) {
        const Nfa nfa = randomNfa(rng, 4);
        const InputTrace t =
            randomTextTrace(rng, 256 + rng.nextBelow(512), "abcdefgh\n ");
        for (const bool starts : {true, false}) {
            EnginePair p(nfa, starts);
            // Enum mode seeds a random state subset; start mode seeds
            // the initial active set like a fresh flow.
            std::vector<StateId> seed = p.cnfa.initialActive();
            if (!starts) {
                seed.clear();
                for (StateId q = 0; q < nfa.size(); ++q)
                    if (rng.nextBool(0.25))
                        seed.push_back(q);
            }
            p.reset(seed);
            p.expectSameObservableState("after reset");
            for (std::uint64_t i = 0; i < t.size(); ++i) {
                p.sparse.step(t.begin()[i]);
                p.dense.step(t.begin()[i]);
                // Full-state compares every few symbols keep the fuzz
                // loop fast without losing divergence localization.
                if (i % 17 == 0)
                    p.expectSameObservableState("mid-run");
            }
            p.expectSameObservableState("after run");
            EXPECT_EQ(sortedReports(p.sparse.takeReports()),
                      sortedReports(p.dense.takeReports()))
                << "iter " << iter << " starts " << starts;
        }
    }
}

TEST(EngineDiff, RunBulkMatchesStepwise)
{
    Rng rng(99);
    const Nfa nfa = randomNfa(rng, 3);
    const InputTrace t = randomTextTrace(rng, 2048, "abcdefgh");
    EnginePair p(nfa, true);
    p.reset(p.cnfa.initialActive());
    p.sparse.run(t.begin(), t.size());
    p.dense.run(t.begin(), t.size());
    p.expectSameObservableState("after bulk run");
    EXPECT_EQ(sortedReports(p.sparse.takeReports()),
              sortedReports(p.dense.takeReports()));
}

TEST(EngineDiff, OverwriteActiveAppliesSameFiltering)
{
    // overwriteActive must drop AllInput starts when start machinery
    // is live, identically on both backends.
    Rng rng(7);
    const Nfa nfa = compileRuleset({{".*ab", 1}, {"cd", 2}}, "m");
    const InputTrace t = randomTextTrace(rng, 512, "abcd");
    for (const bool starts : {true, false}) {
        EnginePair p(nfa, starts);
        p.reset(p.cnfa.initialActive());
        p.sparse.run(t.begin(), 100);
        p.dense.run(t.begin(), 100);
        std::vector<StateId> all;
        for (StateId q = 0; q < nfa.size(); ++q)
            all.push_back(q);
        p.sparse.overwriteActive(all);
        p.dense.overwriteActive(all);
        p.expectSameObservableState("after overwrite");
        p.sparse.run(t.begin() + 100, t.size() - 100);
        p.dense.run(t.begin() + 100, t.size() - 100);
        p.expectSameObservableState("after overwrite + run");
    }
}

TEST(EngineDiff, DenseRangeSizesMatchRangeAnalysis)
{
    Rng rng(31);
    for (int iter = 0; iter < 10; ++iter) {
        const Nfa nfa = randomNfa(rng, 4);
        const CompiledNfa cnfa(nfa);
        const DenseNfa dnfa(cnfa);
        const RangeAnalysis ranges(nfa);
        EXPECT_EQ(dnfa.rangeSizes(), ranges.rangeSizes())
            << "iter " << iter;
    }
}

// --- Whole-run equivalence ------------------------------------------

ApConfig
smallBoard(std::uint32_t half_cores)
{
    ApConfig cfg = ApConfig::d480(1);
    cfg.devicesPerRank = half_cores;
    cfg.halfCoresPerDevice = 1;
    return cfg;
}

struct Workload
{
    Nfa nfa;
    InputTrace input;
};

Workload
diffWorkload(std::uint64_t seed)
{
    Rng rng(seed);
    return Workload{randomNfa(rng, 4),
                    randomTextTrace(rng, 16384, "abcdefgh ")};
}

/** The figure-level facts that must be backend-invariant. */
void
expectSameRun(const PapResult &a, const PapResult &b)
{
    EXPECT_EQ(a.reports, b.reports);
    EXPECT_EQ(a.papCycles, b.papCycles);
    EXPECT_EQ(a.baselineCycles, b.baselineCycles);
    EXPECT_DOUBLE_EQ(a.speedup, b.speedup);
    EXPECT_EQ(a.numSegments, b.numSegments);
    EXPECT_DOUBLE_EQ(a.flowsInRange, b.flowsInRange);
    EXPECT_DOUBLE_EQ(a.avgActiveFlows, b.avgActiveFlows);
    EXPECT_DOUBLE_EQ(a.switchOverheadPct, b.switchOverheadPct);
    EXPECT_EQ(a.flowTransitions, b.flowTransitions);
    EXPECT_EQ(a.flowSymbolCycles, b.flowSymbolCycles);
    ASSERT_EQ(a.segments.size(), b.segments.size());
    for (std::size_t j = 0; j < a.segments.size(); ++j) {
        EXPECT_EQ(a.segments[j].begin, b.segments[j].begin);
        EXPECT_EQ(a.segments[j].length, b.segments[j].length);
        EXPECT_EQ(a.segments[j].flows, b.segments[j].flows);
        EXPECT_EQ(a.segments[j].deactivated,
                  b.segments[j].deactivated);
        EXPECT_EQ(a.segments[j].converged, b.segments[j].converged);
        EXPECT_EQ(a.segments[j].ranToEnd, b.segments[j].ranToEnd);
        EXPECT_EQ(a.segments[j].tDone, b.segments[j].tDone);
        EXPECT_EQ(a.segments[j].tResolve, b.segments[j].tResolve);
    }
}

TEST(EngineDiff, PapRunsAreByteIdenticalAcrossBackends)
{
    for (const std::uint64_t seed : {11u, 22u, 33u}) {
        const Workload w = diffWorkload(seed);
        const ApConfig board = smallBoard(8);
        PapOptions sparse_opt;
        sparse_opt.engine = EngineKind::Sparse;
        PapOptions dense_opt;
        dense_opt.engine = EngineKind::Dense;
        const PapResult a = runPap(w.nfa, w.input, board, sparse_opt);
        const PapResult b = runPap(w.nfa, w.input, board, dense_opt);
        ASSERT_TRUE(a.status.ok()) << "seed " << seed;
        ASSERT_TRUE(b.status.ok()) << "seed " << seed;
        EXPECT_TRUE(a.verified);
        EXPECT_TRUE(b.verified);
        EXPECT_EQ(a.engineBackend, "sparse");
        EXPECT_EQ(b.engineBackend, "dense");
        expectSameRun(a, b);
    }
}

TEST(EngineDiff, SequentialRunsAgreeAcrossBackends)
{
    const Workload w = diffWorkload(5);
    PapOptions sparse_opt;
    sparse_opt.engine = EngineKind::Sparse;
    PapOptions dense_opt;
    dense_opt.engine = EngineKind::Dense;
    const SequentialResult a = runSequential(w.nfa, w.input, sparse_opt);
    const SequentialResult b = runSequential(w.nfa, w.input, dense_opt);
    EXPECT_EQ(a.engineBackend, "sparse");
    EXPECT_EQ(b.engineBackend, "dense");
    EXPECT_EQ(a.reports, b.reports);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.matches, b.matches);
}

TEST(EngineDiff, CheckpointFilesAreByteIdenticalAcrossBackends)
{
    const Workload w = diffWorkload(44);
    const ApConfig board = smallBoard(8);
    const auto checkpoint_bytes = [&](EngineKind kind) {
        const std::string path = ::testing::TempDir() +
                                 "papsim_engine_diff_" +
                                 engineKindName(kind) + ".ckpt";
        exec::removeCheckpoint(path);
        PapOptions opt;
        opt.engine = kind;
        opt.checkpointPath = path;
        opt.stopAfterSegment = 1;
        const PapResult dead = runPap(w.nfa, w.input, board, opt);
        EXPECT_EQ(dead.status.code(), ErrorCode::Cancelled);
        std::ifstream in(path, std::ios::binary);
        EXPECT_TRUE(in.good());
        std::ostringstream bytes;
        bytes << in.rdbuf();
        exec::removeCheckpoint(path);
        return bytes.str();
    };
    const std::string sparse_ckpt = checkpoint_bytes(EngineKind::Sparse);
    const std::string dense_ckpt = checkpoint_bytes(EngineKind::Dense);
    ASSERT_FALSE(sparse_ckpt.empty());
    EXPECT_EQ(sparse_ckpt, dense_ckpt);
}

// --- Backend selection ----------------------------------------------

TEST(EngineSelect, ParseEngineKind)
{
    EXPECT_EQ(parseEngineKind("sparse").value(), EngineKind::Sparse);
    EXPECT_EQ(parseEngineKind("dense").value(), EngineKind::Dense);
    EXPECT_EQ(parseEngineKind("auto").value(), EngineKind::Auto);
    const Result<EngineKind> bad = parseEngineKind("bogus");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::InvalidInput);
}

TEST(EngineSelect, EngineKindNames)
{
    EXPECT_STREQ(engineKindName(EngineKind::Sparse), "sparse");
    EXPECT_STREQ(engineKindName(EngineKind::Dense), "dense");
    EXPECT_STREQ(engineKindName(EngineKind::Auto), "auto");
}

TEST(EngineSelect, ResolveHonorsExplicitRequestAndThreshold)
{
    ::unsetenv("PAP_ENGINE");
    // Explicit requests ignore the threshold entirely.
    EXPECT_EQ(resolveEngineKind(EngineKind::Sparse, 1).value(),
              EngineKind::Sparse);
    EXPECT_EQ(resolveEngineKind(EngineKind::Dense, 1u << 20).value(),
              EngineKind::Dense);
    // Auto: dense up to the threshold, sparse beyond it.
    EXPECT_EQ(resolveEngineKind(EngineKind::Auto,
                                kDenseAutoMaxStates).value(),
              EngineKind::Dense);
    EXPECT_EQ(resolveEngineKind(EngineKind::Auto,
                                kDenseAutoMaxStates + 1).value(),
              EngineKind::Sparse);
}

TEST(EngineSelect, ResolveConsultsEnvironmentOnlyForAuto)
{
    ::setenv("PAP_ENGINE", "sparse", 1);
    EXPECT_EQ(resolveEngineKind(EngineKind::Auto, 4).value(),
              EngineKind::Sparse);
    EXPECT_EQ(resolveEngineKind(EngineKind::Dense, 4).value(),
              EngineKind::Dense);
    ::setenv("PAP_ENGINE", "dense", 1);
    EXPECT_EQ(resolveEngineKind(EngineKind::Auto, 1u << 20).value(),
              EngineKind::Dense);
    ::unsetenv("PAP_ENGINE");
}

TEST(EngineSelect, InvalidEnvironmentIsATypedError)
{
    // An invalid PAP_ENGINE value fails exactly like an invalid
    // --engine flag: a typed InvalidInput error, never a silent
    // fallback to the threshold (and never for explicit requests,
    // which don't consult the environment at all).
    ::setenv("PAP_ENGINE", "wat", 1);
    const Result<EngineKind> bad = resolveEngineKind(EngineKind::Auto, 4);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::InvalidInput);
    EXPECT_NE(bad.status().message().find("PAP_ENGINE"),
              std::string::npos);
    EXPECT_NE(bad.status().message().find("wat"), std::string::npos);
    EXPECT_EQ(resolveEngineKind(EngineKind::Sparse, 4).value(),
              EngineKind::Sparse);
    ::unsetenv("PAP_ENGINE");
}

TEST(EngineSelect, ContextCarriesSelectionErrorAndStaysUsable)
{
    const Nfa nfa = compileRuleset({{"ab", 1}}, "m");
    const CompiledNfa cnfa(nfa);
    ::setenv("PAP_ENGINE", "bogus", 1);
    const EngineContext ctx(cnfa, EngineKind::Auto);
    EXPECT_FALSE(ctx.status().ok());
    EXPECT_EQ(ctx.status().code(), ErrorCode::InvalidInput);
    // The context itself stays constructed on the sparse fallback so
    // callers can decide how to surface the error.
    EXPECT_FALSE(ctx.dense());
    EXPECT_STREQ(ctx.backendName(), "sparse");
    ::unsetenv("PAP_ENGINE");
    const EngineContext good(cnfa, EngineKind::Auto);
    EXPECT_TRUE(good.status().ok());
}

TEST(EngineSelect, RunnersFailTypedOnInvalidEnvironment)
{
    const Nfa nfa = compileRuleset({{"ab", 1}}, "m");
    const InputTrace input(
        std::vector<Symbol>(64, static_cast<Symbol>('a')));
    ::setenv("PAP_ENGINE", "nope", 1);
    const SequentialResult seq = runSequential(nfa, input);
    EXPECT_FALSE(seq.status.ok());
    EXPECT_EQ(seq.status.code(), ErrorCode::InvalidInput);
    EXPECT_TRUE(seq.reports.empty());
    const PapResult par =
        runPap(nfa, input, ApConfig::d480(1), PapOptions{});
    EXPECT_FALSE(par.status.ok());
    EXPECT_EQ(par.status.code(), ErrorCode::InvalidInput);
    ::unsetenv("PAP_ENGINE");
}

TEST(EngineSelect, ContextReportsSelectedBackend)
{
    const Nfa nfa = compileRuleset({{"ab", 1}}, "m");
    const CompiledNfa cnfa(nfa);
    ::unsetenv("PAP_ENGINE");
    const EngineContext sparse(cnfa, EngineKind::Sparse);
    EXPECT_FALSE(sparse.dense());
    EXPECT_STREQ(sparse.backendName(), "sparse");
    EXPECT_EQ(sparse.denseNfa(), nullptr);
    const EngineContext dense(cnfa, EngineKind::Dense);
    EXPECT_TRUE(dense.dense());
    EXPECT_STREQ(dense.backendName(), "dense");
    ASSERT_NE(dense.denseNfa(), nullptr);
    EXPECT_EQ(dense.denseNfa()->size(), cnfa.size());
}

} // namespace
} // namespace pap
